package engine

import (
	"fmt"
	"sort"

	"repro/internal/nn"
	"repro/internal/pipemodel"
	"repro/internal/tensor"
	"repro/internal/transport"
)

// This file is the engine's glue onto the transport package: every
// collective of the executor — the per-stage gradient all-reduce, the
// K-FAC factor fold, the per-step loss reduction of multi-process groups —
// routes through the engine's transport.Group. With the default Loopback
// group the routed fold is instruction-for-instruction the historical
// in-process collective (copy the carried base, add each micro-batch delta
// in ascending order), allocation-free on the steady-state path; with a
// Ring group the same calls put the partials on a wire, and the chain fold
// order keeps the results bit-identical.
//
// Determinism contract: every reduction runs at micro-batch granularity in
// a single fixed order — ascending global micro-batch index, where rank r
// of a W_g-rank group running R local replicas owns global micro-batches
// [r*R*M, (r+1)*R*M) of each step. The transport's fold contract realizes
// exactly that order across ranks, so gradients, K-FAC factors and losses
// are bit-identical for any (group size, replica count, schedule, worker
// count) splitting of the same global batch.
//
// Buffer ownership: the per-micro-batch delta buffers and the carried
// pre-step accumulators are pooled matrices (tensor.Get/GetClone) owned by
// the run state. foldParams consumes (Puts and nils) the deltas it folds,
// but leaves the carried buffers alone: they are the rollback state of an
// aborted step, released by the run state only once the whole step
// succeeded.

// initCollectives prepares the engine's transport routing: the resolved
// group (Loopback when none was configured), the per-stage fold scratch
// (reused [][]float64 part views — the steady-state collective path must
// not allocate), and the precomputed per-parameter collective names.
func (e *Engine) initCollectives() {
	e.group = e.cfg.Transport
	if e.group == nil {
		e.group = transport.Loopback{}
	}
	e.multiRank = e.group.Size() > 1
	perStep := e.cfg.MicroBatches * e.cfg.Replicas
	e.foldScratch = make([][][]float64, e.cfg.Stages)
	e.foldNames = make([][]string, e.cfg.Stages)
	for s, params := range e.reps[0].stageParams {
		e.foldScratch[s] = make([][]float64, perStep)
		e.foldNames[s] = make([]string, len(params))
		for k := range params {
			e.foldNames[s][k] = fmt.Sprintf("g/%d/%d", s, k)
		}
	}
}

// syncInitialParams aligns a multi-rank group's starting weights on rank
// 0's; elastic resyncs (resyncFrom) reuse the same exchange with the state
// owner as the root.
func (e *Engine) syncInitialParams() error { return e.syncParamsFrom(0) }

// syncParamsFrom aligns a multi-rank group's weights: a shape handshake
// (parameter count and sizes broadcast from the root rank and verified
// everywhere — a mismatched model configuration fails here with an
// attributed error instead of a silently diverging group) followed by a
// broadcast of the root's parameter values. Steady state needs no
// re-broadcast: every rank folds identical gradients and runs the
// optimizer in lockstep, so parameters stay bit-identical by induction.
func (e *Engine) syncParamsFrom(root int) error {
	params := e.reps[0].params
	desc := make([]float64, 1+len(params))
	if e.group.Rank() == root {
		desc[0] = float64(len(params))
		for i, p := range params {
			desc[i+1] = float64(p.NumElements())
		}
	}
	if _, err := e.group.Broadcast("init/shape", root, desc); err != nil {
		return fmt.Errorf("engine: parameter shape handshake: %w", err)
	}
	if int(desc[0]) != len(params) {
		return fmt.Errorf("engine: rank %d has %d parameters, rank %d has %d (group must build identical models)",
			e.group.Rank(), len(params), root, int(desc[0]))
	}
	for i, p := range params {
		if int(desc[i+1]) != p.NumElements() {
			return fmt.Errorf("engine: rank %d parameter %s has %d elements, rank %d has %d",
				e.group.Rank(), p.Name, p.NumElements(), root, int(desc[i+1]))
		}
		if _, err := e.group.Broadcast(fmt.Sprintf("init/p/%d", i), root, p.Value.Data); err != nil {
			return fmt.Errorf("engine: broadcasting initial value of %s: %w", p.Name, err)
		}
	}
	// Startup barrier: a tiny all-reduce whose chain passes through every
	// rank, so no rank — rank 0 in particular, whose broadcasts above are
	// fire-and-forget — starts training rounds before the whole group is
	// constructed. Keeps a fast rank's round abort from ever racing a slow
	// rank's initialization.
	var barrier [1]float64
	one := [1]float64{1}
	if _, err := e.group.AllReduce("init/barrier", barrier[:], nil, [][]float64{one[:]}); err != nil {
		return fmt.Errorf("engine: startup barrier: %w", err)
	}
	if got := int(barrier[0]); got != e.group.Size() {
		return fmt.Errorf("engine: startup barrier counted %d ranks, want %d", got, e.group.Size())
	}
	return nil
}

// foldParams performs one stage's gradient collective over a transport
// group: for each parameter, dst = the pre-step carried value (the
// accumulate-semantics base) plus every rank's micro-batch deltas in
// ascending global micro-batch order. carried[k] and deltas[m][k] align
// with params[k]; delta buffers are returned to the pool and their slots
// nilled, carried buffers stay with the caller (rollback state). scratch
// must have len(deltas) slots and names one per parameter; both are reused
// across calls, so the loopback steady state allocates nothing. Returns
// the bytes the group put on the wire.
func foldParams(group transport.Group, names []string, scratch [][]float64, params []*nn.Param, carried []*tensor.Matrix, deltas [][]*tensor.Matrix) (int64, error) {
	var bytes int64
	for k, p := range params {
		if carried[k] == nil {
			return bytes, fmt.Errorf("missing carried gradient state for %s", p.Name)
		}
		for m := range deltas {
			d := deltas[m][k]
			if d == nil {
				return bytes, fmt.Errorf("missing micro-batch %d gradient contribution for %s", m, p.Name)
			}
			scratch[m] = d.Data
		}
		nb, err := group.AllReduce(names[k], p.Grad.Data, carried[k].Data, scratch)
		if err != nil {
			return bytes, fmt.Errorf("all-reduce of %s: %w", p.Name, err)
		}
		bytes += nb
		for m := range deltas {
			tensor.Put(deltas[m][k])
			deltas[m][k] = nil
			scratch[m] = nil
		}
	}
	return bytes, nil
}

// snapshotGradDeltas moves one micro-batch's accumulated gradients out of
// the stage's parameters into pooled delta buffers (zeroing the
// accumulators for the next micro-batch) — the per-participant send buffer
// of the gradient collective. Must run under the (replica, stage) lock,
// immediately after the micro-batch's backward finished accumulating.
func snapshotGradDeltas(params []*nn.Param, dst []*tensor.Matrix) {
	for k, p := range params {
		dst[k] = tensor.GetClone(p.Grad)
		p.Grad.Zero()
	}
}

// kfacFoldScratch is the reusable per-(stage, layer) state of the K-FAC
// factor collective: part views over the per-micro-batch Gram partials,
// the 1-element row-count collective's buffers, and the precomputed
// collective names. Allocated once at EnableKFAC so the factor fold — part
// of the gated zero-alloc round path — reuses it every generation.
type kfacFoldScratch struct {
	parts    [][]float64 // len = local micro-batches per step
	rowVals  []float64   // per-micro row counts as float64
	rowParts [][]float64 // rowParts[m] = rowVals[m : m+1]
	rowDst   [1]float64
	// Collective names: factor A/B payload folds and their row-count
	// companions. A layer's names are reused across generations; the
	// schedule's cross-generation dependency edges order a carried fold
	// before the newer generation's on every rank, so same-name calls are
	// issued in one global order.
	nameA, nameB, nameRA, nameRB string
}

// initKFACFold (re)builds the per-(stage, layer) factor-fold scratch for
// the current stage partition. Called from EnableKFAC.
func (e *Engine) initKFACFold() {
	perStep := e.cfg.MicroBatches * e.cfg.Replicas
	e.kfacFold = make([][]*kfacFoldScratch, e.cfg.Stages)
	for s, st := range e.reps[0].stages {
		e.kfacFold[s] = make([]*kfacFoldScratch, len(st.layers))
		for li := range st.layers {
			fs := &kfacFoldScratch{
				parts:    make([][]float64, perStep),
				rowVals:  make([]float64, perStep),
				rowParts: make([][]float64, perStep),
				nameA:    fmt.Sprintf("fA/%d/%d", s, li),
				nameB:    fmt.Sprintf("fB/%d/%d", s, li),
				nameRA:   fmt.Sprintf("rA/%d/%d", s, li),
				nameRB:   fmt.Sprintf("rB/%d/%d", s, li),
			}
			for m := range fs.rowParts {
				fs.rowParts[m] = fs.rowVals[m : m+1]
			}
			e.kfacFold[s][li] = fs
		}
	}
}

// foldFactor reduces one Kronecker factor over the transport group:
// scale/N · Σ_m U_m^T U_m with the per-micro-batch partials as collective
// parts — summed in the fixed ascending global micro-batch order, N the
// group-wide row count (its own 1-element collective: integer counts sum
// exactly in float64). The returned matrix is pooled; the caller Puts it
// after SetFactors copies it out. Partial buffers stay with the caller.
func (e *Engine) foldFactor(name, rowName string, fs *kfacFoldScratch, parts []*tensor.Matrix, rows []int, scale float64) (*tensor.Matrix, int64, error) {
	var sum *tensor.Matrix
	for m, p := range parts {
		if p == nil {
			return nil, 0, fmt.Errorf("missing curvature contribution of micro-batch %d", m)
		}
		if sum == nil {
			sum = tensor.Get(p.Rows, p.Cols)
		}
		fs.parts[m] = p.Data
		fs.rowVals[m] = float64(rows[m])
	}
	if sum == nil {
		return nil, 0, fmt.Errorf("no curvature contributions")
	}
	bytes, err := e.group.AllReduce(name, sum.Data, nil, fs.parts)
	if err == nil {
		var nb int64
		nb, err = e.group.AllReduce(rowName, fs.rowDst[:], nil, fs.rowParts)
		bytes += nb
	}
	for m := range fs.parts {
		fs.parts[m] = nil
	}
	if err != nil {
		tensor.Put(sum)
		return nil, bytes, err
	}
	n := fs.rowDst[0]
	if n == 0 {
		tensor.Put(sum)
		return nil, bytes, fmt.Errorf("no curvature rows")
	}
	sum.ScaleInPlace(scale / n)
	return sum, bytes, nil
}

// syncLoss reduces step j's per-micro-batch losses across the group so
// every rank reports the global batch's loss — and, because the collective
// completes only when every rank reaches its step commit, doubles as the
// per-step cross-rank barrier. Each local micro-batch's loss is encoded as
// one collective part [Total, Tokens, components in sorted key order], so
// the chain fold reproduces the exact ascending-global-micro addition
// sequence of a single-process run's Loss.Add loop; the reduced loss lands
// in lossParts[j][0] and the other local slots zero out (adding a zero
// Loss is exact). Multi-rank groups only — the local path's results
// already see every micro-batch.
func (st *runState) syncLoss(j int) error {
	e := st.e
	local := st.lossParts[j]
	keys := make([]string, 0, len(local[0].Components))
	for k := range local[0].Components {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	n := 2 + len(keys)
	parts := make([][]float64, len(local))
	for m, l := range local {
		vec := make([]float64, n)
		vec[0] = l.Total
		vec[1] = float64(l.Tokens)
		for i, k := range keys {
			vec[2+i] = l.Components[k]
		}
		parts[m] = vec
	}
	dst := make([]float64, n)
	if _, err := e.group.AllReduce(fmt.Sprintf("loss/%d", j), dst, nil, parts); err != nil {
		return fmt.Errorf("loss collective of step %d: %w", j, err)
	}
	global := pipemodel.Loss{Total: dst[0], Tokens: int(dst[1])}
	if len(keys) > 0 {
		global.Components = make(map[string]float64, len(keys))
		for i, k := range keys {
			global.Components[k] = dst[2+i]
		}
	}
	local[0] = global
	for m := 1; m < len(local); m++ {
		local[m] = pipemodel.Loss{}
	}
	return nil
}
