package engine

import (
	"sort"

	"repro/internal/tensor"
)

// ZeRO-style parameter sharding across the in-process replica axis
// (Config.ShardParams). Each stage's parameters are partitioned across the
// W replicas — greedy by size, largest first, onto the least-loaded owner —
// and every secondary replica detaches the storage of the parameters it
// does not own (Matrix.Data = nil; the headers keep their shapes). The
// primary replica stays full: it is the master copy the optimizer updates,
// the checkpoint subject, and the gather source.
//
// Gather-on-use: a secondary replica's forward or backward op re-attaches
// pooled buffers for its stage's non-owned parameters on entry — values
// copied from the primary (bit-identical to what the per-step broadcast
// would have put there), gradient accumulators zeroed — and releases them
// back to the pool when the op exits. The attach mutates Matrix.Data in
// place because the replica's modules hold the very *Matrix headers that
// were detached. All of it runs under the (replica, stage) lock that
// already serializes every touch of those modules, and the per-micro-batch
// gradient snapshot runs before the op exits, so the training math — and
// the fixed collective fold order — is unchanged: sharding only changes
// how long a secondary replica's parameter bytes stay resident.

// shardState is the engine's sharding bookkeeping: the owner map and, per
// (secondary replica, stage, param), the pooled buffer attached while a
// gather is live (nil when detached or owned).
type shardState struct {
	// owner[s][k] is the replica that keeps stage s's k-th parameter
	// resident (indices align with replica.stageParams[s]).
	owner [][]int
	// vals[r][s][k] / grads[r][s][k] hold the pooled matrices backing a
	// live gather on replica r (r >= 1); guarded by stageMu[r][s].
	vals  [][][]*tensor.Matrix
	grads [][][]*tensor.Matrix
}

// initShards partitions every stage's parameters across the replica axis
// and detaches the non-owned storage of each secondary replica. Called
// once from NewWithConfig when Config.ShardParams is set.
func (e *Engine) initShards() {
	w := e.cfg.Replicas
	sh := &shardState{
		owner: make([][]int, e.cfg.Stages),
		vals:  make([][][]*tensor.Matrix, w),
		grads: make([][][]*tensor.Matrix, w),
	}
	for s, params := range e.reps[0].stageParams {
		// Greedy balance: place parameters largest-first on the currently
		// least-loaded replica — deterministic (stable sort, lowest-index
		// tie-break), near-even by bytes even when one embedding dwarfs the
		// rest of the stage.
		order := make([]int, len(params))
		for k := range order {
			order[k] = k
		}
		sort.SliceStable(order, func(i, j int) bool {
			return params[order[i]].NumElements() > params[order[j]].NumElements()
		})
		load := make([]int, w)
		owner := make([]int, len(params))
		for _, k := range order {
			pick := 0
			for r := 1; r < w; r++ {
				if load[r] < load[pick] {
					pick = r
				}
			}
			owner[k] = pick
			load[pick] += params[k].NumElements()
		}
		sh.owner[s] = owner
	}
	for r := 1; r < w; r++ {
		sh.vals[r] = make([][]*tensor.Matrix, e.cfg.Stages)
		sh.grads[r] = make([][]*tensor.Matrix, e.cfg.Stages)
		for s, params := range e.reps[r].stageParams {
			sh.vals[r][s] = make([]*tensor.Matrix, len(params))
			sh.grads[r][s] = make([]*tensor.Matrix, len(params))
			for k, p := range params {
				if sh.owner[s][k] != r {
					p.Value.Data = nil
					p.Grad.Data = nil
				}
			}
		}
	}
	e.shard = sh
}

// gatherStage attaches pooled storage to replica r's non-owned stage-s
// parameters: values copied from the primary, and — for backward ops —
// zeroed gradient accumulators. Must run under stageMu[r][s]. No-op for
// the primary replica and for unsharded engines.
func (e *Engine) gatherStage(r, s int, withGrads bool) {
	sh := e.shard
	if sh == nil || r == 0 {
		return
	}
	params := e.reps[r].stageParams[s]
	prim := e.reps[0].stageParams[s]
	for k, p := range params {
		if sh.owner[s][k] == r {
			continue
		}
		if p.Value.Data == nil {
			m := tensor.Get(p.Value.Rows, p.Value.Cols)
			copy(m.Data, prim[k].Value.Data)
			p.Value.Data = m.Data
			sh.vals[r][s][k] = m
		}
		if withGrads && p.Grad.Data == nil {
			g := tensor.Get(p.Grad.Rows, p.Grad.Cols)
			g.Zero()
			p.Grad.Data = g.Data
			sh.grads[r][s][k] = g
		}
	}
}

// releaseStage detaches replica r's gathered stage-s parameters again and
// returns their buffers to the pool. Must run under stageMu[r][s], after
// the op consumed the parameters (for backward: after the gradient
// snapshot moved the accumulated deltas out).
func (e *Engine) releaseStage(r, s int) {
	sh := e.shard
	if sh == nil || r == 0 {
		return
	}
	params := e.reps[r].stageParams[s]
	for k, p := range params {
		if m := sh.vals[r][s][k]; m != nil {
			p.Value.Data = nil
			sh.vals[r][s][k] = nil
			tensor.Put(m)
		}
		if g := sh.grads[r][s][k]; g != nil {
			p.Grad.Data = nil
			sh.grads[r][s][k] = nil
			tensor.Put(g)
		}
	}
}

// ShardStats reports the parameter-residency accounting of a ShardParams
// engine, summed over the secondary replicas (the primary is always
// full): FullBytes is what they would hold unsharded (values plus
// gradient accumulators), ResidentBytes what they hold steady-state with
// sharding on. Resident/Full approaches 1/W as the per-stage split evens
// out. ok is false when sharding is not enabled.
func (e *Engine) ShardStats() (full, resident int64, ok bool) {
	if e.shard == nil {
		return 0, 0, false
	}
	for r := 1; r < e.cfg.Replicas; r++ {
		for s, params := range e.reps[r].stageParams {
			for k, p := range params {
				b := int64(p.NumElements()) * 8 * 2 // value + grad
				full += b
				if e.shard.owner[s][k] == r {
					resident += b
				}
			}
		}
	}
	return full, resident, true
}
