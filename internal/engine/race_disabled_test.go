//go:build !race

package engine

// raceEnabled reports whether the race detector is active (see the race
// build-tagged counterpart).
const raceEnabled = false
