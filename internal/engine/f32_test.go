package engine

import (
	"math"
	"testing"

	"repro/internal/data"
	"repro/internal/kfac"
	"repro/internal/nn"
	"repro/internal/optim"
	"repro/internal/tensor"
)

// Float32 compute mode through the full PipeFisher loop: the packed matmul
// kernels narrow their panels and the K-FAC statistics snapshots narrow at
// capture, but the training trajectory must stay close to float64 — the
// factors, inverses, gradients and optimizer state all remain float64, so
// only the per-matmul rounding differs.
func TestFloat32ModeKFACCloseToFloat64(t *testing.T) {
	run := func(f32 bool) ([]float64, bool) {
		tensor.SetF32(f32)
		defer tensor.SetF32(false)
		m, c := newModelAndCorpus(t)
		e, err := NewWithConfig(m, Config{Method: "gpipe", Stages: 2, MicroBatches: 2})
		if err != nil {
			t.Fatal(err)
		}
		if err := e.EnableKFAC(kfac.Options{Damping: 1e-2, StatDecay: 0.95, UsePiDamping: true}, 2); err != nil {
			t.Fatal(err)
		}
		params := m.Params()
		opt := optim.NewLAMB(params, 0.01)
		var losses []float64
		refreshed := false
		for step := 0; step < 6; step++ {
			batch := c.MakeBatch(8, data.DefaultBatchConfig(m.Config.SeqLen))
			nn.ZeroGrads(params)
			res, err := e.TrainStep(batch)
			if err != nil {
				t.Fatal(err)
			}
			opt.Step(3e-3)
			losses = append(losses, res.Loss.Total)
			refreshed = refreshed || res.Refreshed
		}
		return losses, refreshed
	}
	wide, wideRefreshed := run(false)
	narrow, narrowRefreshed := run(true)
	if !wideRefreshed || !narrowRefreshed {
		t.Fatalf("K-FAC refresh did not fire (f64=%v f32=%v)", wideRefreshed, narrowRefreshed)
	}
	for i := range wide {
		tol := 5e-2 * math.Max(1, math.Abs(wide[i]))
		if math.Abs(wide[i]-narrow[i]) > tol {
			t.Fatalf("step %d: float32-mode loss %.6f drifted from float64 loss %.6f (tol %.2g)",
				i, narrow[i], wide[i], tol)
		}
	}
	// The modes must actually differ: bit-identical trajectories would mean
	// the narrow path silently never engaged.
	identical := true
	for i := range wide {
		if wide[i] != narrow[i] {
			identical = false
			break
		}
	}
	if identical {
		t.Fatal("float32-mode losses bit-identical to float64 — narrowing never engaged")
	}
}

// In float32 mode every gradient must still be bit-identical across worker
// counts: the packed driver splits panels on a shape-only grid and each
// output element keeps its fixed ascending-k reduction, narrow or wide.
func TestFloat32ModeWorkerCountBitIdentity(t *testing.T) {
	tensor.SetF32(true)
	defer tensor.SetF32(false)
	defer tensor.SetParallelism(0)
	defer tensor.SetOpParallelism(0)
	grads := func(workers int) ([]*tensor.Matrix, float64) {
		tensor.SetParallelism(workers)
		m, c := newModelAndCorpus(t)
		e, err := NewWithConfig(m, Config{Method: "1f1b", Stages: 2, MicroBatches: 2})
		if err != nil {
			t.Fatal(err)
		}
		if err := e.EnableKFAC(kfac.Options{Damping: 1e-2, StatDecay: 0.95, UsePiDamping: true}, 2); err != nil {
			t.Fatal(err)
		}
		params := m.Params()
		nn.ZeroGrads(params)
		batch := c.MakeBatch(8, data.DefaultBatchConfig(m.Config.SeqLen))
		res, err := e.TrainStep(batch)
		if err != nil {
			t.Fatal(err)
		}
		return cloneGrads(params), res.Loss.Total
	}
	serialGrads, serialLoss := grads(1)
	parGrads, parLoss := grads(4)
	if serialLoss != parLoss {
		t.Fatalf("float32-mode loss differs across worker counts: %v vs %v", serialLoss, parLoss)
	}
	for i := range serialGrads {
		if !serialGrads[i].Equal(parGrads[i]) {
			t.Fatalf("float32-mode gradient %d not bit-identical across worker counts", i)
		}
	}
}
