package engine

import (
	"fmt"
	"time"

	"repro/internal/bert"
	"repro/internal/data"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// stage owns a contiguous slice of the model: stage 0 additionally holds
// the embeddings, the last stage the MLM/NSP heads and the loss.
type stage struct {
	index       int
	first, last bool
	model       *bert.Model
	blocks      []*nn.TransformerBlock

	// Per-step state.
	nMicro      int
	microBS     int
	seqLen      int
	totalMasked int
	totalSeqs   int
	xin         []*tensor.Matrix // stage input per micro-batch (nil on stage 0)
	posIDs      []int
	lossTotal   bert.LossBreakdown
	busySeconds float64
}

func (st *stage) beginStep(nMicro, microBS, seqLen, totalMasked, totalSeqs int) {
	st.nMicro = nMicro
	st.microBS = microBS
	st.seqLen = seqLen
	st.totalMasked = totalMasked
	st.totalSeqs = totalSeqs
	st.xin = make([]*tensor.Matrix, nMicro)
	st.lossTotal = bert.LossBreakdown{}
	st.busySeconds = 0
	if st.first && len(st.posIDs) != microBS*seqLen {
		st.posIDs = make([]int, microBS*seqLen)
		for i := range st.posIDs {
			st.posIDs[i] = i % seqLen
		}
	}
	for _, b := range st.blocks {
		b.SetShape(microBS, seqLen)
	}
}

// embed runs the stage-0 embedding path for a micro-batch.
func (st *stage) embed(mb *data.Batch) *tensor.Matrix {
	tok := st.model.TokEmb.Lookup(mb.Tokens)
	pos := st.model.PosEmb.Lookup(st.posIDs)
	return st.model.EmbNorm.Forward(tok.Add(pos))
}

// runBlocks forwards x through the stage's blocks.
func (st *stage) runBlocks(x *tensor.Matrix) *tensor.Matrix {
	for _, b := range st.blocks {
		x = b.Forward(x)
	}
	return x
}

// forward processes micro-batch m. For non-first stages, x is the
// activation received from the previous stage (saved for recomputation).
// The last stage also evaluates the loss values (gradients are produced
// later, in backward, from recomputed activations).
func (st *stage) forward(m int, mb *data.Batch, x *tensor.Matrix) (*tensor.Matrix, error) {
	start := time.Now()
	defer func() { st.busySeconds += time.Since(start).Seconds() }()

	if st.first {
		x = st.embed(mb)
	} else {
		if x == nil {
			return nil, fmt.Errorf("engine: stage %d received nil activation for micro-batch %d", st.index, m)
		}
		st.xin[m] = x
	}
	y := st.runBlocks(x)
	if st.last {
		if err := st.accumulateLoss(mb, y); err != nil {
			return nil, err
		}
	}
	return y, nil
}

// accumulateLoss evaluates the micro-batch losses with the same weighting
// a full-batch step uses: MLM weighted by the micro-batch's share of
// masked positions, NSP by its share of sequences.
func (st *stage) accumulateLoss(mb *data.Batch, y *tensor.Matrix) error {
	mlmLogits := st.model.MLMHead.Forward(y)
	mlmLoss, _, masked := nn.CrossEntropy(mlmLogits, mb.Targets)
	cls := clsRows(y, mb.BatchSize, st.seqLen, st.model.Config.DModel)
	nspLogits := st.model.NSPHead.Forward(cls)
	nspLoss, _, _ := nn.CrossEntropy(nspLogits, nspTargets(mb))
	if st.totalMasked > 0 {
		st.lossTotal.MLM += mlmLoss * float64(masked) / float64(st.totalMasked)
	}
	st.lossTotal.NSP += nspLoss * float64(mb.BatchSize) / float64(st.totalSeqs)
	st.lossTotal.MaskedCount = st.totalMasked
	st.lossTotal.Total = st.lossTotal.MLM + st.lossTotal.NSP
	return nil
}

// backward differentiates micro-batch m. Activation recomputation: the
// stage re-runs its forward from the saved input so every layer's caches
// correspond to this micro-batch, then backpropagates. gradIn is the error
// signal from the next stage (nil on the last stage).
func (st *stage) backward(m int, mb *data.Batch, gradIn *tensor.Matrix) (*tensor.Matrix, error) {
	start := time.Now()
	defer func() { st.busySeconds += time.Since(start).Seconds() }()

	// Recompute.
	var x *tensor.Matrix
	if st.first {
		x = st.embed(mb)
	} else {
		x = st.xin[m]
		if x == nil {
			return nil, fmt.Errorf("engine: stage %d has no saved input for micro-batch %d", st.index, m)
		}
	}
	y := st.runBlocks(x)

	grad := gradIn
	if st.last {
		var err error
		grad, err = st.lossGradient(mb, y)
		if err != nil {
			return nil, err
		}
	}
	if grad == nil {
		return nil, fmt.Errorf("engine: stage %d received nil gradient for micro-batch %d", st.index, m)
	}
	for i := len(st.blocks) - 1; i >= 0; i-- {
		grad = st.blocks[i].Backward(grad)
	}
	if st.first {
		dEmb := st.model.EmbNorm.Backward(grad)
		st.model.TokEmb.BackwardIDs(dEmb)
		st.model.PosEmb.BackwardIDs(dEmb)
		return nil, nil
	}
	return grad, nil
}

// lossGradient computes the globally-scaled loss gradient w.r.t. the last
// stage's block output: micro-batch CE gradients are means over local
// counts, so rescaling by local/global count reproduces the full-batch
// mean exactly.
func (st *stage) lossGradient(mb *data.Batch, y *tensor.Matrix) (*tensor.Matrix, error) {
	mlmLogits := st.model.MLMHead.Forward(y)
	_, mlmGrad, masked := nn.CrossEntropy(mlmLogits, mb.Targets)
	if st.totalMasked > 0 && masked > 0 {
		mlmGrad.ScaleInPlace(float64(masked) / float64(st.totalMasked))
	}
	dx := st.model.MLMHead.Backward(mlmGrad)

	cls := clsRows(y, mb.BatchSize, st.seqLen, st.model.Config.DModel)
	nspLogits := st.model.NSPHead.Forward(cls)
	_, nspGrad, _ := nn.CrossEntropy(nspLogits, nspTargets(mb))
	nspGrad.ScaleInPlace(float64(mb.BatchSize) / float64(st.totalSeqs))
	dCls := st.model.NSPHead.Backward(nspGrad)
	for i := 0; i < mb.BatchSize; i++ {
		row := dx.Row(i * st.seqLen)
		add := dCls.Row(i)
		for j := range row {
			row[j] += add[j]
		}
	}
	return dx, nil
}

// clsRows gathers the [CLS] (first) row of each sequence.
func clsRows(y *tensor.Matrix, batch, seqLen, d int) *tensor.Matrix {
	cls := tensor.Zeros(batch, d)
	for i := 0; i < batch; i++ {
		copy(cls.Row(i), y.Row(i*seqLen))
	}
	return cls
}

func nspTargets(mb *data.Batch) []int {
	out := make([]int, mb.BatchSize)
	for i, isNext := range mb.IsNext {
		if isNext {
			out[i] = 1
		}
	}
	return out
}
