package engine

import (
	"fmt"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// stage owns a contiguous slice of the model's blocks. Stage 0 additionally
// drives the model's embedding path, the last stage its head and loss. All
// model state a stage touches is guarded by the engine's per-stage lock,
// which is what lets two devices host one stage (Chimera's bidirectional
// pairs) against a single shared set of parameters.
type stage struct {
	index       int
	first, last bool
	blocks      []*nn.TransformerBlock
	layers      []*nn.Dense // K-FAC-eligible dense layers, in factor order
}

// runBlocks forwards x through the stage's blocks, setting the batch shape
// first (ops of different micro-batches interleave on a stage under 1F1B
// and Chimera, so the shape is re-established per op).
func (st *stage) runBlocks(x *tensor.Matrix, batch, seqLen int) *tensor.Matrix {
	for _, b := range st.blocks {
		b.SetShape(batch, seqLen)
		x = b.Forward(x)
	}
	return x
}

// backBlocks backpropagates grad through the stage's blocks in reverse.
// The caller must have recomputed the stage's forward for the same
// micro-batch immediately before, so every layer's caches match.
func (st *stage) backBlocks(grad *tensor.Matrix) *tensor.Matrix {
	for i := len(st.blocks) - 1; i >= 0; i-- {
		grad = st.blocks[i].Backward(grad)
	}
	return grad
}

// layerOf resolves a Kronecker-factor index (A factors even, B odd — the
// order of pipeline.StageCosts.InversionUnits) to the stage's dense layer.
func (st *stage) layerOf(factor int) (layer int, factorB bool, err error) {
	if factor < 0 || factor >= 2*len(st.layers) {
		return 0, false, fmt.Errorf("engine: stage %d has no factor %d (have %d)", st.index, factor, 2*len(st.layers))
	}
	return factor / 2, factor%2 == 1, nil
}
