package engine

import (
	"sync/atomic"

	"repro/internal/pipemodel"
	"repro/internal/tensor"
)

// kfacGenPool holds one statistics *generation* of the K-FAC refresh
// pipeline: the per-micro-batch activation/gradient snapshots taken in the
// generation's collect round, the partial Kronecker-factor products the
// scheduled Curvature ops derive from them, and the per-layer fold markers.
// The engine double-buffers two pools so overlapped refresh windows
// (Config.OverlapRounds) can have two generations in flight at once — the
// round's own collection writing one pool while the previous generation's
// carried ops (pipeline.Op.Generation = 1) fold and invert out of the
// other — without a new window's snapshots ever clobbering factors still
// being folded. Serialized rounds use the same pools with at most one live
// generation, so the two modes share one execution path.
//
// All matrices cycle through the tensor workspace pools: snapshots are
// consumed (Release) by the curvature op that reduces them, partials (Put)
// by the inversion op that folds the layer, and reset scrubs whatever an
// aborted round left behind. The slice structure itself is allocated once
// at EnableKFAC and reused every round. Snapshots are precision-tagged
// Snaps so float32 compute mode halves their resident footprint — they are
// the dominant term of the paper's Msave_err memory cost — while the
// curvature partials and folded factors stay float64.
type kfacGenPool struct {
	actsSnap  [][][]tensor.Snap    // [stage][gmicro][layer]
	gradsSnap [][][]tensor.Snap    // [stage][gmicro][layer]
	curvA     [][][]*tensor.Matrix // [stage][layer][gmicro]
	curvB     [][][]*tensor.Matrix // [stage][layer][gmicro]
	rowsA     [][][]int
	rowsB     [][][]int
	// folded marks layers whose factors this generation already folded into
	// the preconditioner's EMA (first inversion touch, under the layer
	// lock) — the guard that makes one generation fold exactly once even
	// when its two factor inversions execute in different rounds.
	folded [][]bool
	// totals carries the loss denominators of the generation's statistics
	// batch (the collect round's first step), so a carried fold scales the
	// B factors with the generation's own batch, not the folding round's.
	totals pipemodel.Totals
	// failed marks the generation degraded: one of its refresh ops failed
	// past the retry budget, so the generation is incomplete and must never
	// be served as a stale generation or carried forward. Set by the
	// resilience layer, consumed at round end, cleared by reset.
	failed atomic.Bool
}

func newKFACGenPool(stages, perStep, layers int) *kfacGenPool {
	p := &kfacGenPool{
		actsSnap:  snap3(stages, perStep, layers),
		gradsSnap: snap3(stages, perStep, layers),
		curvA:     mat3(stages, layers, perStep),
		curvB:     mat3(stages, layers, perStep),
		rowsA:     int3(stages, layers, perStep),
		rowsB:     int3(stages, layers, perStep),
		folded:    make([][]bool, stages),
	}
	for s := range p.folded {
		p.folded[s] = make([]bool, layers)
	}
	return p
}

// reset scrubs the pool for its next generation: matrices still held
// (snapshots never reduced, partials never folded — the residue of an
// aborted round) return to the workspace pool, and the fold markers clear.
func (p *kfacGenPool) reset() {
	scrubSnaps := func(m [][][]tensor.Snap) {
		for i := range m {
			for j := range m[i] {
				for k, v := range m[i][j] {
					if v.Valid() {
						v.Release()
						m[i][j][k] = tensor.Snap{}
					}
				}
			}
		}
	}
	scrub := func(m [][][]*tensor.Matrix) {
		for i := range m {
			for j := range m[i] {
				for k, v := range m[i][j] {
					if v != nil {
						tensor.Put(v)
						m[i][j][k] = nil
					}
				}
			}
		}
	}
	scrubSnaps(p.actsSnap)
	scrubSnaps(p.gradsSnap)
	scrub(p.curvA)
	scrub(p.curvB)
	for s := range p.folded {
		for l := range p.folded[s] {
			p.folded[s][l] = false
		}
	}
	p.totals = pipemodel.Totals{}
	p.failed.Store(false)
}
