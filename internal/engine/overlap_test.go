package engine

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"repro/internal/bert"
	"repro/internal/data"
	"repro/internal/gpt"
	"repro/internal/kfac"
	"repro/internal/optim"
	"repro/internal/pipeline"
	"repro/internal/pipemodel"
	"repro/internal/schedule"
)

// hasCarrySchedule reports whether the engine's executable schedule
// contains carried (Generation = 1) refresh ops.
func hasCarrySchedule(e *Engine) bool {
	for _, op := range e.Schedule().Ops {
		if op.Generation == 1 {
			return true
		}
	}
	return false
}

// Overlap-vs-serialized bit-identity when the cadences align — i.e. when
// the window's bubbles hold the whole refresh, so nothing carries and the
// overlapped schedule degenerates to the serialized one. The generation
// pools, parity bookkeeping, and pool-borne loss scaling must then be
// invisible to the math: identical losses and bit-identical parameters for
// BERT and GPT, all three schedules, W in {1, 2}. (gpipe/1f1b fit at K = 2
// with 2 stages; chimera needs the 4-stage form — its 2-stage schedule has
// no usable bubbles at all.)
func TestOverlapVsSerializedBitIdentity(t *testing.T) {
	type modelCase struct {
		name    string
		make    func(blocks int) (pipemodel.Model, error)
		batches func(t *testing.T, n, size int) []*data.Batch
	}
	cases := []modelCase{
		{"bert", func(blocks int) (pipemodel.Model, error) {
			cfg := bert.TinyConfig()
			cfg.Blocks = blocks
			return bert.New(cfg, 123)
		}, bertBatches},
		{"gpt", func(blocks int) (pipemodel.Model, error) {
			cfg := gpt.TinyConfig()
			cfg.Blocks = blocks
			return gpt.New(cfg, 99)
		}, gptBatches},
	}
	for _, mc := range cases {
		for _, method := range []string{"gpipe", "1f1b", "chimera"} {
			for _, w := range []int{1, 2} {
				t.Run(fmt.Sprintf("%s/%s/W%d", mc.name, method, w), func(t *testing.T) {
					stages, micro, blocks := 2, 4/w, 2
					if method == "chimera" {
						stages, micro, blocks = 4, 4, 4
					}
					batches := mc.batches(t, 4, 2*micro*w)
					m1, err := mc.make(blocks)
					if err != nil {
						t.Fatal(err)
					}
					m2, err := mc.make(blocks)
					if err != nil {
						t.Fatal(err)
					}
					base := Config{
						Method: method, Stages: stages, MicroBatches: micro,
						Replicas: w, InversionParallel: w > 1, RefreshSteps: 2,
					}
					over := base
					over.OverlapRounds = true
					l1 := runRounds(t, m1, batches, base, 2)
					l2 := runRounds(t, m2, batches, over, 2)
					for i := range l1 {
						if l1[i] != l2[i] {
							t.Fatalf("step %d: overlap loss %.17g != serialized loss %.17g", i, l2[i], l1[i])
						}
					}
					requireParamsBitEqual(t, m2.Params(), m1.Params(), "overlap vs serialized")
				})
			}
		}
	}
}

// The aligned-cadence identity above is only meaningful if the schedule
// really carries nothing; this guard fails loudly if the cost shape drifts
// and the configs stop aligning.
func TestOverlapIdentityConfigsCarryNothing(t *testing.T) {
	for _, method := range []string{"gpipe", "1f1b", "chimera"} {
		for _, w := range []int{1, 2} {
			stages, micro, blocks := 2, 4/w, 2
			if method == "chimera" {
				stages, micro, blocks = 4, 4, 4
			}
			cfg := bert.TinyConfig()
			cfg.Blocks = blocks
			m, err := bert.New(cfg, 1)
			if err != nil {
				t.Fatal(err)
			}
			e, err := NewWithConfig(m, Config{
				Method: method, Stages: stages, MicroBatches: micro,
				Replicas: w, InversionParallel: w > 1, RefreshSteps: 2, OverlapRounds: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			if err := e.EnableKFAC(kfac.DefaultOptions(), 2); err != nil {
				t.Fatal(err)
			}
			if hasCarrySchedule(e) {
				t.Fatalf("%s/W%d K=2: identity config now carries work; realign the bit-identity test", method, w)
			}
		}
	}
}

// The pipelined-generations steady state: a K = 1 window cannot hold the
// refresh, so with overlap the WHOLE refresh carries — round g collects
// generation g's statistics while executing generation g-1's curvature,
// fold, and inversions in its bubbles. Delivery therefore lags collection
// by one round, every round delivers a complete generation in steady
// state, and the carried fold must use its own generation's statistics.
func TestOverlapCarriedGenerationDelivery(t *testing.T) {
	m, c := newModelAndCorpus(t)
	e, err := NewWithConfig(m, Config{
		Method: "1f1b", Stages: 2, MicroBatches: 4, RefreshSteps: 1, OverlapRounds: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.EnableKFAC(kfac.Options{Damping: 1e-2, StatDecay: 0.9, UsePiDamping: true}, 1); err != nil {
		t.Fatal(err)
	}
	if !hasCarrySchedule(e) {
		t.Fatal("K=1 overlap schedule must carry the refresh")
	}
	opt := optim.NewLAMB(m.Params(), 0.01)
	e.SetOptimizer(func(step int) error { opt.Step(5e-3); return nil })
	mk := func() []*data.Batch {
		return []*data.Batch{c.MakeBatch(8, data.DefaultBatchConfig(m.Config.SeqLen))}
	}
	curvUpdates := func() int {
		n := e.KFACStates(0).States()[0].CurvatureUpdates
		for s := 0; s < e.Stages(); s++ {
			for _, ls := range e.KFACStates(s).States() {
				if ls.CurvatureUpdates != n {
					t.Fatalf("stage %d layer %q: %d curvature updates, others have %d",
						s, ls.Layer.Name, ls.CurvatureUpdates, n)
				}
			}
		}
		return n
	}
	// Round 0: collect generation 0; nothing delivered yet.
	res, err := e.TrainRound(mk())
	if err != nil {
		t.Fatal(err)
	}
	if !res[0].Refreshed {
		t.Fatal("round 0 must collect")
	}
	if got := curvUpdates(); got != 0 {
		t.Fatalf("round 0 folded %d generations; delivery must lag collection", got)
	}
	for s := 0; s < e.Stages(); s++ {
		for _, ls := range e.KFACStates(s).States() {
			if ls.HasInverses() {
				t.Fatalf("stage %d layer %q: inverses before the carried round delivered them", s, ls.Layer.Name)
			}
		}
	}
	// Round 1: generation 0's carried ops execute — full delivery — while
	// generation 1 is collected into the other pool.
	if _, err := e.TrainRound(mk()); err != nil {
		t.Fatal(err)
	}
	if got := curvUpdates(); got != 1 {
		t.Fatalf("after round 1: %d generations folded, want 1", got)
	}
	for s := 0; s < e.Stages(); s++ {
		for _, ls := range e.KFACStates(s).States() {
			if !ls.HasInverses() {
				t.Fatalf("stage %d layer %q: carried round left no inverses", s, ls.Layer.Name)
			}
		}
	}
	// The executed timeline shows the carried generation in the bubbles.
	var carriedEvents int
	tl := e.LastTimeline()
	for d := 0; d < tl.Devices; d++ {
		for _, ev := range tl.Events[d] {
			if (ev.Op.Kind == pipeline.Curvature || ev.Op.Kind == pipeline.Inversion) && ev.Op.Generation == 1 {
				carriedEvents++
			}
		}
	}
	if carriedEvents == 0 {
		t.Fatal("executed timeline of the carried round shows no Generation-1 refresh events")
	}
	// Round 2: steady state — one complete generation per round.
	if _, err := e.TrainRound(mk()); err != nil {
		t.Fatal(err)
	}
	if got := curvUpdates(); got != 2 {
		t.Fatalf("after round 2: %d generations folded, want 2 (one per steady-state round)", got)
	}
	for _, p := range m.Params() {
		if p.Value.HasNaN() {
			t.Fatalf("NaN parameter %s under overlapped rounds", p.Name)
		}
	}
}

// Partial carry: a 4-stage chimera K = 1 window holds part of the refresh;
// the rest carries. The steady-state round then executes BOTH generations
// — the window's own fitted refresh work and the previous generation's
// carried remainder — against the two pools, and the per-layer fold order
// keeps every layer's EMA sequential in generations.
func TestOverlapPartialCarryExecutesBothGenerations(t *testing.T) {
	cfg := bert.TinyConfig()
	cfg.Blocks = 4
	m, err := bert.New(cfg, 7)
	if err != nil {
		t.Fatal(err)
	}
	c, err := data.NewCorpus(cfg.VocabSize, 1.0, 11)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewWithConfig(m, Config{
		Method: "chimera", Stages: 4, MicroBatches: 4, RefreshSteps: 1, OverlapRounds: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.EnableKFAC(kfac.DefaultOptions(), 1); err != nil {
		t.Fatal(err)
	}
	var gen0, gen1 int
	for _, op := range e.Schedule().Ops {
		if op.Kind == pipeline.Curvature || op.Kind == pipeline.Inversion {
			if op.Generation == 1 {
				gen1++
			} else {
				gen0++
			}
		}
	}
	if gen0 == 0 || gen1 == 0 {
		t.Fatalf("want a partial carry (both generations in the schedule), got gen0=%d gen1=%d", gen0, gen1)
	}
	opt := optim.NewLAMB(m.Params(), 0.01)
	e.SetOptimizer(func(step int) error { opt.Step(5e-3); return nil })
	mk := func() []*data.Batch {
		return []*data.Batch{c.MakeBatch(8, data.DefaultBatchConfig(cfg.SeqLen))}
	}
	for round := 0; round < 3; round++ {
		res, err := e.TrainRound(mk())
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if math.IsNaN(res[0].Loss.Total) || res[0].Loss.Total <= 0 {
			t.Fatalf("round %d: bad loss %v", round, res[0].Loss.Total)
		}
	}
	// Steady-state round: both generations' refresh events executed.
	var exec0, exec1 int
	tl := e.LastTimeline()
	for d := 0; d < tl.Devices; d++ {
		for _, ev := range tl.Events[d] {
			if ev.Op.Kind == pipeline.Curvature || ev.Op.Kind == pipeline.Inversion {
				if ev.Op.Generation == 1 {
					exec1++
				} else {
					exec0++
				}
			}
		}
	}
	if exec0 == 0 || exec1 == 0 {
		t.Fatalf("steady-state round must execute both generations, got gen0=%d gen1=%d events", exec0, exec1)
	}
	// Rounds 0..2 = generations 0..2 collected; generations 0 and 1
	// delivered (generation 2's fitted part folded in round 2 as well).
	for s := 0; s < e.Stages(); s++ {
		for _, ls := range e.KFACStates(s).States() {
			if ls.CurvatureUpdates < 2 {
				t.Fatalf("stage %d layer %q: only %d generations folded after 3 rounds", s, ls.Layer.Name, ls.CurvatureUpdates)
			}
			if !ls.HasInverses() {
				t.Fatalf("stage %d layer %q: no inverses in steady state", s, ls.Layer.Name)
			}
		}
	}
}

// An abort while a carried generation is in flight discards it: the pools
// are scrubbed, and the next round re-runs a full refresh rather than
// serving a half-delivered generation.
func TestOverlapAbortDiscardsCarriedGeneration(t *testing.T) {
	m, c := newModelAndCorpus(t)
	e, err := NewWithConfig(m, Config{
		Method: "1f1b", Stages: 2, MicroBatches: 4, RefreshSteps: 1, OverlapRounds: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.EnableKFAC(kfac.DefaultOptions(), 1); err != nil {
		t.Fatal(err)
	}
	opt := optim.NewLAMB(m.Params(), 0.01)
	e.SetOptimizer(func(step int) error { opt.Step(5e-3); return nil })
	mk := func() []*data.Batch {
		return []*data.Batch{c.MakeBatch(8, data.DefaultBatchConfig(m.Config.SeqLen))}
	}
	if _, err := e.TrainRound(mk()); err != nil { // round 0: collect
		t.Fatal(err)
	}
	// Round 1 (the carried delivery) aborts mid-carry.
	e.failOp = func(op *pipeline.Op) error {
		if op.Kind == pipeline.Inversion && op.Generation == 1 {
			return fmt.Errorf("injected carry fault")
		}
		return nil
	}
	if _, err := e.TrainRound(mk()); err == nil || !strings.Contains(err.Error(), "injected carry fault") {
		t.Fatalf("expected the injected carry fault, got %v", err)
	}
	if e.carryPending() {
		t.Fatal("aborted round left a carried generation pending")
	}
	e.failOp = nil
	// Recovery: the next rounds rebuild a full generation and deliver it.
	if _, err := e.TrainRound(mk()); err != nil {
		t.Fatal(err)
	}
	if _, err := e.TrainRound(mk()); err != nil {
		t.Fatal(err)
	}
	for s := 0; s < e.Stages(); s++ {
		for _, ls := range e.KFACStates(s).States() {
			if !ls.HasInverses() {
				t.Fatalf("stage %d layer %q: no inverses after recovery", s, ls.Layer.Name)
			}
		}
	}
	for _, p := range m.Params() {
		if p.Value.HasNaN() {
			t.Fatalf("NaN parameter %s after aborted carry + recovery", p.Name)
		}
	}
}

// MeasuredCosts round-trip under overlapped rounds: the measured durations
// of an executed overlapped round feed back into the overlapped executable
// form and yield a valid, runnable schedule — the sim/exec calibration
// loop works for the new round shape too.
func TestOverlapMeasuredCostsRoundTrip(t *testing.T) {
	m, c := newModelAndCorpus(t)
	e, err := NewWithConfig(m, Config{
		Method: "1f1b", Stages: 2, MicroBatches: 4, RefreshSteps: 1, OverlapRounds: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.EnableKFAC(kfac.DefaultOptions(), 1); err != nil {
		t.Fatal(err)
	}
	opt := optim.NewLAMB(m.Params(), 0.01)
	e.SetOptimizer(func(step int) error { opt.Step(5e-3); return nil })
	mk := func() []*data.Batch {
		return []*data.Batch{c.MakeBatch(8, data.DefaultBatchConfig(m.Config.SeqLen))}
	}
	for round := 0; round < 2; round++ { // round 1 executes carried refresh work
		if _, err := e.TrainRound(mk()); err != nil {
			t.Fatal(err)
		}
	}
	tl := e.LastTimeline()
	costs := MeasuredCosts(tl, 2*len(e.StageLayers(0)))
	s, err := schedule.Executable(schedule.Config{
		Method: "1f1b", Stages: 2, MicroBatches: 4, Costs: costs,
		RefreshSteps: 1, Overlap: true,
	})
	if err != nil {
		t.Fatalf("measured costs do not yield an overlapped executable schedule: %v", err)
	}
	if _, err := pipeline.Run(s); err != nil {
		t.Fatalf("measured-cost overlapped schedule stalls: %v", err)
	}
}

// Adaptive K: with Config.RefreshSteps = AdaptiveRefreshSteps the round
// length comes from Assign's measured refresh window at EnableKFAC time,
// TrainRound consumes RoundSteps batches, and the refreshEvery validation
// names the adaptive resolution path instead of blaming a flag the caller
// never set.
func TestAdaptiveRefreshSteps(t *testing.T) {
	m, c := newModelAndCorpus(t)
	e, err := NewWithConfig(m, Config{
		Method: "1f1b", Stages: 2, MicroBatches: 4, RefreshSteps: AdaptiveRefreshSteps,
	})
	if err != nil {
		t.Fatal(err)
	}
	// A refreshEvery that cannot be a multiple of any K > 1 the measured
	// window might choose: the error must name the adaptive path.
	if err := e.EnableKFAC(kfac.DefaultOptions(), 3); err == nil {
		t.Fatal("refreshEvery 3 with measured K=2 must be rejected")
	} else if !strings.Contains(err.Error(), "adaptively") {
		t.Fatalf("adaptive-K validation error must report the adaptive resolution path, got: %v", err)
	}
	if err := e.EnableKFAC(kfac.DefaultOptions(), 0); err != nil {
		t.Fatal(err)
	}
	k := e.RoundSteps()
	if k < 2 {
		t.Fatalf("the 1f1b tiny refresh needs a multi-step window; adaptive K resolved to %d", k)
	}
	if e.Schedule().Steps != k {
		t.Fatalf("executable schedule spans %d steps, adaptive K is %d", e.Schedule().Steps, k)
	}
	opt := optim.NewLAMB(m.Params(), 0.01)
	e.SetOptimizer(func(step int) error { opt.Step(5e-3); return nil })
	batches := make([]*data.Batch, k)
	for j := range batches {
		batches[j] = c.MakeBatch(8, data.DefaultBatchConfig(m.Config.SeqLen))
	}
	res, err := e.TrainRound(batches)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != k {
		t.Fatalf("adaptive round returned %d step results, want %d", len(res), k)
	}
	for j, r := range res {
		if math.IsNaN(r.Loss.Total) || r.Loss.Total <= 0 {
			t.Fatalf("step %d: bad loss %v", j, r.Loss.Total)
		}
	}
}
