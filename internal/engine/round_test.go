package engine

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"repro/internal/bert"
	"repro/internal/data"
	"repro/internal/gpt"
	"repro/internal/kfac"
	"repro/internal/nn"
	"repro/internal/optim"
	"repro/internal/pipeline"
	"repro/internal/pipemodel"
)

// requireParamsBitEqual asserts exact parameter equality between two model
// instances — the round-vs-skip identity is bit-level, like the
// data-parallel collective guarantees it builds on.
func requireParamsBitEqual(t *testing.T, got, want []*nn.Param, context string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d params vs %d", context, len(got), len(want))
	}
	for i := range got {
		if !got[i].Value.Equal(want[i].Value) {
			t.Fatalf("%s: parameter %s not bit-identical (max diff %g)",
				context, got[i].Name, got[i].Value.Sub(want[i].Value).MaxAbs())
		}
	}
}

// runSkipBaseline drives the classic per-step loop: zero grads, TrainStep,
// optimizer — the skip-cadence baseline every round configuration is
// compared against.
func runSkipBaseline(t *testing.T, model pipemodel.Model, batches []*data.Batch, cfg Config, kfacEvery int) []float64 {
	t.Helper()
	e, err := NewWithConfig(model, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if kfacEvery > 0 {
		if err := e.EnableKFAC(kfac.Options{Damping: 1e-2, StatDecay: 0.9, UsePiDamping: true}, kfacEvery); err != nil {
			t.Fatal(err)
		}
	}
	params := model.Params()
	opt := optim.NewLAMB(params, 0.01)
	var losses []float64
	for _, b := range batches {
		nn.ZeroGrads(params)
		res, err := e.TrainStep(b)
		if err != nil {
			t.Fatal(err)
		}
		opt.Step(5e-3)
		losses = append(losses, res.Loss.Total)
	}
	return losses
}

// runRounds drives the same training through K-step rounds: the engine owns
// the per-step optimizer firing (SetOptimizer) and the grad zeroing.
func runRounds(t *testing.T, model pipemodel.Model, batches []*data.Batch, cfg Config, kfacEvery int) []float64 {
	t.Helper()
	e, err := NewWithConfig(model, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if kfacEvery > 0 {
		if err := e.EnableKFAC(kfac.Options{Damping: 1e-2, StatDecay: 0.9, UsePiDamping: true}, kfacEvery); err != nil {
			t.Fatal(err)
		}
	}
	opt := optim.NewLAMB(model.Params(), 0.01)
	e.SetOptimizer(func(step int) error {
		opt.Step(5e-3)
		return nil
	})
	k := e.RoundSteps()
	var losses []float64
	for i := 0; i < len(batches); i += k {
		res, err := e.TrainRound(batches[i : i+k])
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range res {
			losses = append(losses, r.Loss.Total)
		}
	}
	return losses
}

func bertBatches(t *testing.T, n, size int) []*data.Batch {
	t.Helper()
	c, err := data.NewCorpus(bert.TinyConfig().VocabSize, 1.0, 321)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]*data.Batch, n)
	for i := range out {
		out[i] = c.MakeBatch(size, data.DefaultBatchConfig(bert.TinyConfig().SeqLen))
	}
	return out
}

func gptBatches(t *testing.T, n, size int) []*data.Batch {
	t.Helper()
	c, err := data.NewCorpus(gpt.TinyConfig().VocabSize, 1.0, 7)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]*data.Batch, n)
	for i := range out {
		out[i] = gpt.MakeBatch(c, size, gpt.TinyConfig().SeqLen)
	}
	return out
}

// The round machinery on its own (no K-FAC) must be invisible to the math:
// a K = 2 round — one executable schedule spanning both steps, persistent
// device goroutines, per-step collectives and the optimizer firing at the
// round-internal step barrier — produces bit-identical parameters to two
// classic TrainStep iterations, for every schedule and W in {1, 2}.
func TestRoundMachineryBitIdentity(t *testing.T) {
	for _, method := range []string{"gpipe", "1f1b", "chimera"} {
		for _, w := range []int{1, 2} {
			t.Run(fmt.Sprintf("%s/W%d", method, w), func(t *testing.T) {
				micro := 4 / w
				if method == "chimera" {
					micro = 4 // chimera needs even micro-batches per replica
				}
				batches := bertBatches(t, 4, 2*micro*w)
				m1, err := bert.New(bert.TinyConfig(), 123)
				if err != nil {
					t.Fatal(err)
				}
				m2, err := bert.New(bert.TinyConfig(), 123)
				if err != nil {
					t.Fatal(err)
				}
				base := Config{Method: method, Stages: 2, MicroBatches: micro, Replicas: w}
				round := base
				round.RefreshSteps = 2
				l1 := runSkipBaseline(t, m1, batches, base, 0)
				l2 := runRounds(t, m2, batches, round, 0)
				for i := range l1 {
					if l1[i] != l2[i] {
						t.Fatalf("step %d: round loss %.17g != step-loop loss %.17g", i, l2[i], l1[i])
					}
				}
				requireParamsBitEqual(t, m2.Params(), m1.Params(), "round vs step loop")
			})
		}
	}
}

// The round-vs-skip identity for the full K-FAC path: a front-loaded K-step
// refresh round at refresh interval K is the skip cadence expressed as a
// round — same statistics batch, same fold order, same inverse visibility —
// so parameters must match the RefreshSteps = 1 skip baseline bit for bit,
// for BERT and GPT, every schedule, W in {1, 2}.
func TestRoundVsSkipIdentityKFAC(t *testing.T) {
	type modelCase struct {
		name    string
		make    func() (pipemodel.Model, error)
		batches func(t *testing.T, n, size int) []*data.Batch
	}
	cases := []modelCase{
		{"bert", func() (pipemodel.Model, error) { return bert.New(bert.TinyConfig(), 123) }, bertBatches},
		{"gpt", func() (pipemodel.Model, error) { return gpt.New(gpt.TinyConfig(), 99) }, gptBatches},
	}
	for _, mc := range cases {
		for _, method := range []string{"gpipe", "1f1b", "chimera"} {
			for _, w := range []int{1, 2} {
				t.Run(fmt.Sprintf("%s/%s/W%d", mc.name, method, w), func(t *testing.T) {
					micro := 4 / w
					if method == "chimera" {
						micro = 4
					}
					batches := mc.batches(t, 4, 2*micro*w)
					m1, err := mc.make()
					if err != nil {
						t.Fatal(err)
					}
					m2, err := mc.make()
					if err != nil {
						t.Fatal(err)
					}
					base := Config{Method: method, Stages: 2, MicroBatches: micro, Replicas: w}
					round := base
					round.RefreshSteps = 2
					round.FrontLoadRefresh = true
					l1 := runSkipBaseline(t, m1, batches, base, 2)
					l2 := runRounds(t, m2, batches, round, 2)
					for i := range l1 {
						if l1[i] != l2[i] {
							t.Fatalf("step %d: round loss %.17g != skip loss %.17g", i, l2[i], l1[i])
						}
					}
					requireParamsBitEqual(t, m2.Params(), m1.Params(), "K-FAC round vs skip")
				})
			}
		}
	}
}

// The acceptance property of the spread round: with default packing the
// engine executes a K = 2 refresh for real with curvature/inversion ops
// landing in BOTH steps' bubbles of the executed timeline (not all in step
// 0), the refresh still completes within the round (every layer folded
// once and inverted), and each step preconditions with whatever inverses
// its dependency edges guarantee — training proceeds.
func TestRoundDistributesRefreshAcrossSteps(t *testing.T) {
	m, c := newModelAndCorpus(t)
	e, err := NewWithConfig(m, Config{Method: "gpipe", Stages: 2, MicroBatches: 4, RefreshSteps: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.EnableKFAC(kfac.Options{Damping: 1e-2, StatDecay: 0.9, UsePiDamping: true}, 2); err != nil {
		t.Fatal(err)
	}
	// The schedule itself must spread the refresh.
	perStep := map[int]int{}
	for _, op := range e.Schedule().Ops {
		if op.Kind == pipeline.Curvature || op.Kind == pipeline.Inversion {
			perStep[op.Step]++
		}
	}
	if perStep[0] == 0 || perStep[1] == 0 {
		t.Fatalf("executable round packs K-FAC work into one step only: per-step counts %v", perStep)
	}
	opt := optim.NewLAMB(m.Params(), 0.01)
	e.SetOptimizer(func(step int) error { opt.Step(5e-3); return nil })
	batches := []*data.Batch{
		c.MakeBatch(8, data.DefaultBatchConfig(m.Config.SeqLen)),
		c.MakeBatch(8, data.DefaultBatchConfig(m.Config.SeqLen)),
	}
	res, err := e.TrainRound(batches)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("round returned %d step results, want 2", len(res))
	}
	for j, r := range res {
		if !r.Refreshed {
			t.Fatalf("step %d of the refresh round not marked refreshed", j)
		}
		if math.IsNaN(r.Loss.Total) || r.Loss.Total <= 0 {
			t.Fatalf("step %d: bad loss %v", j, r.Loss.Total)
		}
	}
	// The EXECUTED timeline shows the distribution: K-FAC events in both
	// steps' bubbles.
	tl := e.LastTimeline()
	if tl.Steps != 2 || len(tl.StepEnd) != 2 {
		t.Fatalf("executed timeline records %d steps (%d boundaries), want 2", tl.Steps, len(tl.StepEnd))
	}
	execPerStep := map[int]int{}
	for d := 0; d < tl.Devices; d++ {
		for _, ev := range tl.Events[d] {
			if ev.Op.Kind == pipeline.Curvature || ev.Op.Kind == pipeline.Inversion {
				execPerStep[ev.Op.Step]++
			}
		}
	}
	if execPerStep[0] == 0 || execPerStep[1] == 0 {
		t.Fatalf("executed K-FAC events not distributed across the round's steps: %v", execPerStep)
	}
	// One round = one complete refresh: every layer folded exactly once,
	// every inverse present.
	for s := 0; s < e.Stages(); s++ {
		for _, ls := range e.KFACStates(s).States() {
			if ls.CurvatureUpdates != 1 {
				t.Fatalf("stage %d layer %q: %d curvature updates after one round, want 1", s, ls.Layer.Name, ls.CurvatureUpdates)
			}
			if !ls.HasInverses() {
				t.Fatalf("stage %d layer %q: refresh round left no inverses", s, ls.Layer.Name)
			}
		}
	}
	// A second, non-refresh round executes stale (refreshEvery = 2 means
	// one refresh round in every... round of 2 steps refreshes at rounds
	// 0, 1, 2 only when roundIndex%1 == 0 — with refreshEvery == K every
	// round refreshes, so use the counters to confirm the cadence).
	if _, err := e.TrainRound([]*data.Batch{
		c.MakeBatch(8, data.DefaultBatchConfig(m.Config.SeqLen)),
		c.MakeBatch(8, data.DefaultBatchConfig(m.Config.SeqLen)),
	}); err != nil {
		t.Fatal(err)
	}
	for s := 0; s < e.Stages(); s++ {
		for _, ls := range e.KFACStates(s).States() {
			if ls.CurvatureUpdates != 2 {
				t.Fatalf("stage %d layer %q: %d curvature updates after two refresh rounds, want 2", s, ls.Layer.Name, ls.CurvatureUpdates)
			}
		}
	}
}

// Multi-step rounds with a refresh interval spanning several rounds: only
// every (refreshEvery/K)-th round executes the packed refresh; the others
// precondition with the stale inverses — and a partially committed round
// cannot desync the cadence, because it is counted in rounds.
func TestRoundSkipCadenceAcrossRounds(t *testing.T) {
	m, c := newModelAndCorpus(t)
	e, err := NewWithConfig(m, Config{Method: "1f1b", Stages: 2, MicroBatches: 2, RefreshSteps: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.EnableKFAC(kfac.DefaultOptions(), 4); err != nil {
		t.Fatal(err)
	}
	opt := optim.NewLAMB(m.Params(), 0.01)
	e.SetOptimizer(func(step int) error { opt.Step(5e-3); return nil })
	mk := func() []*data.Batch {
		return []*data.Batch{
			c.MakeBatch(4, data.DefaultBatchConfig(m.Config.SeqLen)),
			c.MakeBatch(4, data.DefaultBatchConfig(m.Config.SeqLen)),
		}
	}
	res, err := e.TrainRound(mk()) // round 0: refresh
	if err != nil {
		t.Fatal(err)
	}
	if !res[0].Refreshed || !res[1].Refreshed {
		t.Fatal("round 0 must refresh")
	}
	res, err = e.TrainRound(mk()) // round 1: stale
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Refreshed || res[1].Refreshed {
		t.Fatal("round 1 must run stale (refreshEvery=4, K=2)")
	}
	if upd := e.KFACStates(0).States()[0].CurvatureUpdates; upd != 1 {
		t.Fatalf("stale round folded curvature: %d updates, want 1", upd)
	}
	res, err = e.TrainRound(mk()) // round 2: refresh again
	if err != nil {
		t.Fatal(err)
	}
	if !res[0].Refreshed {
		t.Fatal("round 2 must refresh")
	}
}

// Round-level API validation: multi-step engines reject TrainStep and
// malformed rounds, and the refresh interval must align with the round.
func TestRoundValidation(t *testing.T) {
	m, c := newModelAndCorpus(t)
	if _, err := NewWithConfig(m, Config{Stages: 2, MicroBatches: 2, RefreshSteps: -2}); err == nil {
		t.Fatal("negative RefreshSteps (other than AdaptiveRefreshSteps) must be rejected")
	}
	if e, err := NewWithConfig(m, Config{Stages: 2, MicroBatches: 2, RefreshSteps: AdaptiveRefreshSteps}); err != nil {
		t.Fatalf("AdaptiveRefreshSteps must be accepted: %v", err)
	} else if e.RoundSteps() != 1 {
		t.Fatalf("adaptive engine runs one-step rounds before EnableKFAC, got K=%d", e.RoundSteps())
	}
	if _, err := NewWithConfig(m, Config{Stages: 2, MicroBatches: 2, OverlapRounds: true, FrontLoadRefresh: true}); err == nil {
		t.Fatal("OverlapRounds + FrontLoadRefresh must be rejected")
	}
	e, err := NewWithConfig(m, Config{Stages: 2, MicroBatches: 2, RefreshSteps: 2})
	if err != nil {
		t.Fatal(err)
	}
	batch := c.MakeBatch(4, data.DefaultBatchConfig(m.Config.SeqLen))
	if _, err := e.TrainStep(batch); err == nil || !strings.Contains(err.Error(), "TrainRound") {
		t.Fatalf("TrainStep on a multi-step engine must point at TrainRound, got %v", err)
	}
	if _, err := e.TrainRound([]*data.Batch{batch}); err == nil || !strings.Contains(err.Error(), "2 steps") {
		t.Fatalf("round with the wrong batch count must be rejected, got %v", err)
	}
	if _, err := e.TrainRound([]*data.Batch{batch, batch}); err == nil || !strings.Contains(err.Error(), "SetOptimizer") {
		t.Fatalf("multi-step round without an optimizer callback must be rejected, got %v", err)
	}
	if err := e.EnableKFAC(kfac.DefaultOptions(), 3); err == nil || !strings.Contains(err.Error(), "multiple") {
		t.Fatalf("refreshEvery not a multiple of the round length must be rejected, got %v", err)
	}
}

// A failure inside a later step of a round aborts cleanly at round
// granularity: devices parked at the step barrier unpark, the root cause
// (not the barrier abort) surfaces, already-committed steps stand (the
// step counter advances past them only), and the engine stays usable.
func TestRoundErrorAbortsAndStaysUsable(t *testing.T) {
	m, c := newModelAndCorpus(t)
	e, err := NewWithConfig(m, Config{Method: "gpipe", Stages: 2, MicroBatches: 2, RefreshSteps: 2})
	if err != nil {
		t.Fatal(err)
	}
	opt := optim.NewLAMB(m.Params(), 0.01)
	e.SetOptimizer(func(step int) error { opt.Step(5e-3); return nil })
	mk := func() []*data.Batch {
		return []*data.Batch{
			c.MakeBatch(4, data.DefaultBatchConfig(m.Config.SeqLen)),
			c.MakeBatch(4, data.DefaultBatchConfig(m.Config.SeqLen)),
		}
	}
	e.failOp = func(op *pipeline.Op) error {
		if op.Kind == pipeline.Backward && op.Step == 1 && op.MicroBatch == 1 {
			return fmt.Errorf("injected step-1 fault")
		}
		return nil
	}
	partial, err := e.TrainRound(mk())
	if err == nil || !strings.Contains(err.Error(), "injected step-1 fault") {
		t.Fatalf("expected the injected fault to surface as the root cause, got %v", err)
	}
	if e.stepIndex != 1 {
		t.Fatalf("step counter %d after a round that committed step 0 only, want 1", e.stepIndex)
	}
	// The committed step's result is not lost: its optimizer update stands
	// and its batch cannot be re-run.
	if len(partial) != 1 {
		t.Fatalf("aborted round returned %d step results, want the 1 committed step", len(partial))
	}
	if math.IsNaN(partial[0].Loss.Total) || partial[0].Loss.Total <= 0 {
		t.Fatalf("committed step's result invalid: %+v", partial[0].Loss)
	}
	e.failOp = nil
	res, err := e.TrainRound(mk())
	if err != nil {
		t.Fatalf("engine unusable after aborted round: %v", err)
	}
	for _, r := range res {
		if math.IsNaN(r.Loss.Total) {
			t.Fatal("NaN loss after recovery round")
		}
	}
	if e.stepIndex != 3 {
		t.Fatalf("step counter %d after recovery round, want 3", e.stepIndex)
	}
	for _, p := range m.Params() {
		if p.Value.HasNaN() {
			t.Fatalf("NaN parameter %s after aborted round + recovery", p.Name)
		}
	}
}

// An aborted *refresh* round must not count as a delivered refresh: the
// window's inversions may have run only partially, so the next round
// re-runs the refresh instead of preconditioning on mixed-generation
// factors until the cadence comes around again.
func TestAbortedRefreshRoundRetries(t *testing.T) {
	m, c := newModelAndCorpus(t)
	e, err := NewWithConfig(m, Config{Method: "gpipe", Stages: 2, MicroBatches: 2, RefreshSteps: 2})
	if err != nil {
		t.Fatal(err)
	}
	// refreshEvery = 8, K = 2: nominally rounds 0, 4, 8, ... refresh.
	if err := e.EnableKFAC(kfac.DefaultOptions(), 8); err != nil {
		t.Fatal(err)
	}
	opt := optim.NewLAMB(m.Params(), 0.01)
	e.SetOptimizer(func(step int) error { opt.Step(5e-3); return nil })
	mk := func() []*data.Batch {
		return []*data.Batch{
			c.MakeBatch(4, data.DefaultBatchConfig(m.Config.SeqLen)),
			c.MakeBatch(4, data.DefaultBatchConfig(m.Config.SeqLen)),
		}
	}
	// Round 0 (refresh) aborts in step 1, after step 0 committed.
	e.failOp = func(op *pipeline.Op) error {
		if op.Kind == pipeline.Backward && op.Step == 1 && op.MicroBatch == 1 {
			return fmt.Errorf("injected refresh-round fault")
		}
		return nil
	}
	if _, err := e.TrainRound(mk()); err == nil {
		t.Fatal("expected the injected fault to surface")
	}
	e.failOp = nil
	// The next round is off the nominal cadence (roundIndex = 1) but must
	// refresh anyway, completing a full generation.
	res, err := e.TrainRound(mk())
	if err != nil {
		t.Fatal(err)
	}
	if !res[0].Refreshed {
		t.Fatal("round after an aborted refresh must re-run the refresh")
	}
	for s := 0; s < e.Stages(); s++ {
		for _, ls := range e.KFACStates(s).States() {
			if !ls.HasInverses() {
				t.Fatalf("stage %d layer %q: no inverses after the retried refresh", s, ls.Layer.Name)
			}
		}
	}
	// And the cadence resumes: the following round runs stale.
	res, err = e.TrainRound(mk())
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Refreshed {
		t.Fatal("round after a completed refresh must run stale (refreshEvery=8)")
	}
}
