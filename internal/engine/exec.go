package engine

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/data"
	"repro/internal/hardware"
	"repro/internal/pipeline"
	"repro/internal/pipemodel"
	"repro/internal/tensor"
)

// runState is the transient dataflow of one executed training step. The
// per-op completion channels realize the schedule's dependency edges;
// activations and error signals are published into the staged arrays by
// their producing op and read by consumers only after the producer's
// channel closed, so the arrays need no locking of their own.
type runState struct {
	e       *Engine
	micro   []*data.Batch
	totals  pipemodel.Totals
	refresh bool

	done []chan struct{} // per op, closed on completion (or skip)

	stageIn  [][]*tensor.Matrix // [stage][micro] stage inputs saved for recomputation
	stageOut [][]*tensor.Matrix // [stage][micro] activations leaving a stage
	gradOut  [][]*tensor.Matrix // [stage][micro] error signals leaving a stage

	lossParts []pipemodel.Loss // per micro-batch, written by the last stage

	// K-FAC dataflow (refresh steps only): per-micro-batch statistics
	// snapshots taken at the op boundaries rules 1 makes them available,
	// and the partial factor products the scheduled Curvature ops compute
	// in the bubbles.
	actsSnap  [][][]*tensor.Matrix // [stage][micro][layer]
	gradsSnap [][][]*tensor.Matrix // [stage][micro][layer]
	curvA     [][][]*tensor.Matrix // [stage][layer][micro]
	curvB     [][][]*tensor.Matrix // [stage][layer][micro]
	rowsA     [][][]int
	rowsB     [][][]int
	finalized [][]bool // [stage][layer]: factors folded into the EMA this step

	errs   []error // per device
	failed atomic.Bool

	events [][]pipeline.Event // per device, measured wall-clock
	start  time.Time
}

// runStep executes the engine's schedule once: one goroutine per device
// walks that device's op order, waiting on each op's dependency channels,
// executing the op, then signalling completion. On the first error the
// step is aborted — remaining ops are drained (signalled without
// executing) so no peer can block on a dependency that will never arrive,
// and the error is surfaced after all devices joined.
func (e *Engine) runStep(micro []*data.Batch, totals pipemodel.Totals, refresh bool) (*StepResult, error) {
	nStages := len(e.stages)
	n := len(micro)
	st := &runState{
		e: e, micro: micro, totals: totals, refresh: refresh,
		done:      make([]chan struct{}, len(e.sched.Ops)),
		stageIn:   mat2(nStages, n),
		stageOut:  mat2(nStages, n),
		gradOut:   mat2(nStages, n),
		lossParts: make([]pipemodel.Loss, n),
		errs:      make([]error, e.sched.Devices),
		events:    make([][]pipeline.Event, e.sched.Devices),
		start:     time.Now(),
	}
	for i := range st.done {
		st.done[i] = make(chan struct{})
	}
	if refresh {
		st.actsSnap = mat3(nStages, n, len(e.stages[0].layers))
		st.gradsSnap = mat3(nStages, n, len(e.stages[0].layers))
		st.curvA = mat3(nStages, len(e.stages[0].layers), n)
		st.curvB = mat3(nStages, len(e.stages[0].layers), n)
		st.rowsA = int3(nStages, len(e.stages[0].layers), n)
		st.rowsB = int3(nStages, len(e.stages[0].layers), n)
		st.finalized = make([][]bool, nStages)
		for s := range st.finalized {
			st.finalized[s] = make([]bool, len(e.stages[s].layers))
		}
	}

	var wg sync.WaitGroup
	for d := 0; d < e.sched.Devices; d++ {
		wg.Add(1)
		go func(d int) {
			defer wg.Done()
			for _, id := range e.sched.Order[d] {
				op := e.sched.Ops[id]
				for _, dep := range op.Deps {
					<-st.done[dep]
				}
				if !st.failed.Load() {
					if err := st.exec(d, op); err != nil {
						st.errs[d] = fmt.Errorf("engine: device %d op %s: %w", d, op.Label(), err)
						st.failed.Store(true)
					}
				}
				close(st.done[id])
			}
		}(d)
	}
	wg.Wait()
	for _, err := range st.errs {
		if err != nil {
			return nil, err
		}
	}

	res := &StepResult{DeviceBusy: make([]float64, e.sched.Devices), Refreshed: refresh}
	for _, part := range st.lossParts {
		res.Loss.Add(part)
	}
	for d := range st.events {
		var busy hardware.Microseconds
		for _, ev := range st.events[d] {
			busy += ev.Duration()
		}
		res.DeviceBusy[d] = float64(busy) / 1e6
	}
	e.lastTimeline = st.timeline()
	return res, nil
}

// exec dispatches one op. Modeled collectives and the optimizer update
// (SyncGrad, SyncCurvature, OptStep) are no-ops in this single-process
// realization: gradients live in shared memory and the caller applies the
// optimizer between steps.
func (st *runState) exec(d int, op *pipeline.Op) error {
	if hook := st.e.failOp; hook != nil {
		if err := hook(op); err != nil {
			return err
		}
	}
	switch op.Kind {
	case pipeline.Forward:
		return st.forward(d, op)
	case pipeline.Backward:
		return st.backward(d, op)
	case pipeline.Curvature:
		if st.refresh {
			return st.curvature(d, op)
		}
		return nil
	case pipeline.Inversion:
		if st.refresh {
			return st.inversion(d, op)
		}
		return nil
	case pipeline.Precondition:
		return st.precondition(d, op)
	case pipeline.SyncGrad, pipeline.SyncCurvature, pipeline.OptStep:
		return nil
	}
	return fmt.Errorf("unexpected op kind %v", op.Kind)
}

// forward embeds (stage 0) or receives the upstream activation, runs the
// stage's blocks, evaluates the loss on the last stage, and publishes the
// output for the next stage. On refresh steps it snapshots each dense
// layer's input activations — the A-factor statistics that rule 1 makes
// schedulable from this point on.
func (st *runState) forward(d int, op *pipeline.Op) error {
	s, m := op.Stage, op.MicroBatch
	stg := st.e.stages[s]
	mb := st.micro[m]
	st.e.stageMu[s].Lock()
	defer st.e.stageMu[s].Unlock()
	t0 := time.Since(st.start)

	var x *tensor.Matrix
	if stg.first {
		x = st.e.model.EmbedForward(mb)
	} else {
		x = st.stageOut[s-1][m]
		if x == nil {
			return fmt.Errorf("no activation from stage %d for micro-batch %d", s-1, m)
		}
		st.stageIn[s][m] = x
	}
	y := stg.runBlocks(x, mb.BatchSize, mb.SeqLen)
	if stg.last {
		loss, err := st.e.model.HeadLoss(mb, y, st.totals)
		if err != nil {
			return err
		}
		st.lossParts[m] = loss
	} else {
		// The stage output is a module-retained buffer that the next
		// forward through this stage will overwrite; hand the consumer
		// stage a pooled copy (returned to the pool after its backward).
		st.stageOut[s][m] = tensor.GetClone(y)
	}
	if st.refresh {
		// Snapshot the A-factor statistics into pooled buffers: the
		// layer-retained capture buffers are only valid until this
		// stage's next op, but the scheduled Curvature ops consume the
		// snapshots later, in the pipeline bubbles.
		for li, l := range stg.layers {
			st.actsSnap[s][m][li] = tensor.GetClone(l.CapturedInput())
		}
	}
	st.record(d, op, t0)
	return nil
}

// backward recomputes the stage's forward from the saved input (the
// paper's "R" configuration — recorded as its own Recompute event), then
// backpropagates: the last stage seeds the chain with the head's
// globally-scaled loss gradient, other stages consume the error signal of
// the stage after them, and stage 0 finishes into the embedding tables. On
// refresh steps it snapshots each dense layer's output gradients — the
// B-factor statistics of rule 1.
func (st *runState) backward(d int, op *pipeline.Op) error {
	s, m := op.Stage, op.MicroBatch
	stg := st.e.stages[s]
	mb := st.micro[m]
	st.e.stageMu[s].Lock()
	defer st.e.stageMu[s].Unlock()
	t0 := time.Since(st.start)

	var x *tensor.Matrix
	if stg.first {
		x = st.e.model.EmbedForward(mb)
	} else {
		x = st.stageIn[s][m]
		if x == nil {
			return fmt.Errorf("no saved input for micro-batch %d", m)
		}
	}
	y := stg.runBlocks(x, mb.BatchSize, mb.SeqLen)
	tRec := time.Since(st.start)
	st.recordKind(d, pipeline.Recompute, op, t0, tRec)

	var grad *tensor.Matrix
	if stg.last {
		var err error
		grad, err = st.e.model.HeadGradient(mb, y, st.totals)
		if err != nil {
			return err
		}
	} else {
		grad = st.gradOut[s+1][m]
		if grad == nil {
			return fmt.Errorf("no error signal from stage %d for micro-batch %d", s+1, m)
		}
	}
	grad = stg.backBlocks(grad)
	if st.refresh {
		// Snapshot the B-factor statistics into pooled buffers (see the
		// A-factor snapshot in forward).
		for li, l := range stg.layers {
			st.gradsSnap[s][m][li] = tensor.GetClone(l.CapturedOutputGrad())
		}
	}
	if stg.first {
		st.e.model.EmbedBackward(grad)
	} else {
		// Like forward activations, the outgoing error signal is a
		// module-retained buffer; publish a pooled copy.
		st.gradOut[s][m] = tensor.GetClone(grad)
	}
	// This micro-batch is done on this stage: recycle the pooled buffers
	// it consumed — the activation received from the previous stage (kept
	// for recomputation) and the error signal from the next stage.
	if !stg.first {
		tensor.Put(st.stageIn[s][m])
		st.stageIn[s][m] = nil
		st.stageOut[s-1][m] = nil
	}
	if !stg.last {
		tensor.Put(st.gradOut[s+1][m])
		st.gradOut[s+1][m] = nil
	}
	st.recordKind(d, pipeline.Backward, op, tRec, time.Since(st.start))
	return nil
}

// curvature computes one micro-batch's partial Kronecker-factor product
// (U^T U) from the snapshotted statistics — the bubble-filling work of
// rule 1, at the factor granularity the packer scheduled.
func (st *runState) curvature(d int, op *pipeline.Op) error {
	s, m := op.Stage, op.MicroBatch
	stg := st.e.stages[s]
	li, factorB, err := stg.layerOf(op.Factor)
	if err != nil {
		return err
	}
	st.e.stageMu[s].Lock()
	defer st.e.stageMu[s].Unlock()
	t0 := time.Since(st.start)
	var stat *tensor.Matrix
	if factorB {
		stat = st.gradsSnap[s][m][li]
	} else {
		stat = st.actsSnap[s][m][li]
	}
	if stat == nil {
		return fmt.Errorf("no captured statistics for layer %d factor %d micro-batch %d", li, op.Factor, m)
	}
	// The partial Gram product U^T U goes into a pooled buffer (released
	// by the inversion op once it is folded into the factor sum), and the
	// statistics snapshot is recycled here — its only consumer.
	part := tensor.Get(stat.Cols, stat.Cols)
	tensor.TMatMulInto(part, stat, stat)
	if factorB {
		st.curvB[s][li][m] = part
		st.rowsB[s][li][m] = stat.Rows
		st.gradsSnap[s][m][li] = nil
	} else {
		st.curvA[s][li][m] = part
		st.rowsA[s][li][m] = stat.Rows
		st.actsSnap[s][m][li] = nil
	}
	tensor.Put(stat)
	st.record(d, op, t0)
	return nil
}

// inversion finalizes the layer's factors on first touch (folding the
// accumulated per-micro-batch products into the preconditioner's EMA, in
// deterministic micro-batch order) and then refreshes the cached inverse
// of the op's factor — rule 2's unit of inversion work.
func (st *runState) inversion(d int, op *pipeline.Op) error {
	s := op.Stage
	stg := st.e.stages[s]
	li, factorB, err := stg.layerOf(op.Factor)
	if err != nil {
		return err
	}
	st.e.stageMu[s].Lock()
	defer st.e.stageMu[s].Unlock()
	t0 := time.Since(st.start)
	if !st.finalized[s][li] {
		newA, err := sumFactor(st.curvA[s][li], st.rowsA[s][li], 1)
		if err != nil {
			return fmt.Errorf("factor A of layer %d: %w", li, err)
		}
		scale := st.e.model.KFACLossScale(st.totals)
		newB, err := sumFactor(st.curvB[s][li], st.rowsB[s][li], scale*scale)
		if err != nil {
			return fmt.Errorf("factor B of layer %d: %w", li, err)
		}
		if err := st.e.kfacPre[s].SetFactors(li, newA, newB); err != nil {
			return err
		}
		st.finalized[s][li] = true
		// The per-micro-batch partial products are folded in; recycle
		// their pooled buffers.
		for i, part := range st.curvA[s][li] {
			tensor.Put(part)
			st.curvA[s][li][i] = nil
		}
		for i, part := range st.curvB[s][li] {
			tensor.Put(part)
			st.curvB[s][li][i] = nil
		}
	}
	if err := st.e.kfacPre[s].InvertFactor(li, factorB); err != nil {
		return err
	}
	st.record(d, op, t0)
	return nil
}

// sumFactor folds per-micro-batch partial products into one factor:
// scale/N · Σ_m U_m^T U_m, summed in micro-batch order for determinism.
func sumFactor(parts []*tensor.Matrix, rows []int, scale float64) (*tensor.Matrix, error) {
	var sum *tensor.Matrix
	var n int
	for m, p := range parts {
		if p == nil {
			return nil, fmt.Errorf("missing curvature contribution of micro-batch %d", m)
		}
		if sum == nil {
			sum = tensor.Zeros(p.Rows, p.Cols)
		}
		sum.AddInPlace(p)
		n += rows[m]
	}
	if sum == nil || n == 0 {
		return nil, fmt.Errorf("no curvature contributions")
	}
	sum.ScaleInPlace(scale / float64(n))
	return sum, nil
}

// precondition rewrites the stage's gradients with the cached (possibly
// stale) K-FAC inverses — the per-step Precondition op, "the only
// computational overhead of PipeFisher" (Figure 1).
func (st *runState) precondition(d int, op *pipeline.Op) error {
	if st.e.kfacPre == nil {
		return nil
	}
	s := op.Stage
	st.e.stageMu[s].Lock()
	defer st.e.stageMu[s].Unlock()
	t0 := time.Since(st.start)
	st.e.kfacPre[s].Precondition()
	st.record(d, op, t0)
	return nil
}

// record appends a measured event for op, ending now.
func (st *runState) record(d int, op *pipeline.Op, t0 time.Duration) {
	st.recordKind(d, op.Kind, op, t0, time.Since(st.start))
}

// recordKind appends a measured event, possibly under a different kind
// than the schedule op (Recompute segments of Backward ops).
func (st *runState) recordKind(d int, kind pipeline.WorkKind, op *pipeline.Op, t0, t1 time.Duration) {
	ev := op
	if kind != op.Kind {
		ev = &pipeline.Op{
			Kind: kind, Device: op.Device, Stage: op.Stage,
			MicroBatch: op.MicroBatch, Factor: op.Factor, Step: op.Step,
		}
	}
	start := hardware.Microseconds(t0.Microseconds())
	end := hardware.Microseconds(t1.Microseconds())
	if end < start {
		end = start
	}
	st.events[d] = append(st.events[d], pipeline.Event{Op: ev, Start: start, End: end})
}

// timeline assembles the executed step's measured timeline, recording the
// intra-op parallelism the kernels ran with so the executed trace can be
// compared against simulated ones on equal terms.
func (st *runState) timeline() *pipeline.Timeline {
	tl := &pipeline.Timeline{
		Name:          st.e.sched.Name + " (executed)",
		Devices:       st.e.sched.Devices,
		Steps:         1,
		Events:        st.events,
		Parallelism:   st.e.workers,
		OpParallelism: st.e.opShare,
	}
	for d := range tl.Events {
		for _, ev := range tl.Events[d] {
			if ev.End > tl.Makespan {
				tl.Makespan = ev.End
			}
		}
	}
	tl.StepEnd = []hardware.Microseconds{tl.Makespan}
	return tl
}

func mat2(a, b int) [][]*tensor.Matrix {
	out := make([][]*tensor.Matrix, a)
	for i := range out {
		out[i] = make([]*tensor.Matrix, b)
	}
	return out
}

func mat3(a, b, c int) [][][]*tensor.Matrix {
	out := make([][][]*tensor.Matrix, a)
	for i := range out {
		out[i] = mat2(b, c)
	}
	return out
}

func int3(a, b, c int) [][][]int {
	out := make([][][]int, a)
	for i := range out {
		out[i] = make([][]int, b)
		for j := range out[i] {
			out[i][j] = make([]int, c)
		}
	}
	return out
}
