package engine

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/data"
	"repro/internal/hardware"
	"repro/internal/pipeline"
	"repro/internal/pipemodel"
	"repro/internal/tensor"
)

// runState is the transient dataflow of one executed training step. The
// per-op completion channels realize the schedule's dependency edges;
// activations and error signals are published into the staged arrays by
// their producing op and read by consumers only after the producer's
// channel closed, so the arrays need no locking of their own. All
// micro-batch-indexed arrays use the *global* micro-batch index
// (replica*MicroBatches + local micro): replicas write disjoint slots, and
// every reduction walks the slots in ascending global order — the fixed
// collective order that makes gradients bit-identical across W.
type runState struct {
	e       *Engine
	micro   []*data.Batch // global micro-batches, Replicas*MicroBatches of them
	totals  pipemodel.Totals
	refresh bool

	done []chan struct{} // per op, closed on completion (or skip)

	stageIn  [][]*tensor.Matrix // [stage][gmicro] stage inputs saved for recomputation
	stageOut [][]*tensor.Matrix // [stage][gmicro] activations leaving a stage
	gradOut  [][]*tensor.Matrix // [stage][gmicro] error signals leaving a stage

	lossParts []pipemodel.Loss // per global micro-batch, written by the last stage

	// Gradient-collective state: carried holds the primary's pre-step
	// accumulators (restored as the base of the reduction), deltas the
	// per-micro-batch contributions snapshotted by each backward, foldDone
	// the per-stage once-guards of the reduction (any participant of the
	// stage's collective may perform it; latecomers block until it
	// finished), and foldErr a reduction failure to surface.
	carried  [][]*tensor.Matrix   // [stage][param]
	deltas   [][][]*tensor.Matrix // [stage][gmicro][param]
	foldDone []sync.Once          // per stage
	foldErr  []error              // per stage, written inside foldDone

	// K-FAC dataflow (refresh steps only): per-micro-batch statistics
	// snapshots taken at the op boundaries rules 1 makes them available,
	// and the partial factor products the scheduled Curvature ops compute
	// in the bubbles.
	actsSnap  [][][]*tensor.Matrix // [stage][gmicro][layer]
	gradsSnap [][][]*tensor.Matrix // [stage][gmicro][layer]
	curvA     [][][]*tensor.Matrix // [stage][layer][gmicro]
	curvB     [][][]*tensor.Matrix // [stage][layer][gmicro]
	rowsA     [][][]int
	rowsB     [][][]int
	finalized [][]bool // [stage][layer]: factors folded into the EMA this step

	errs   []error // per device
	failed atomic.Bool

	events [][]pipeline.Event // per device, measured wall-clock
	start  time.Time
}

// gmicro maps an op to its global micro-batch index.
func (st *runState) gmicro(op *pipeline.Op) int {
	return op.Replica*st.e.cfg.MicroBatches + op.MicroBatch
}

// runStep executes the engine's schedule once: one goroutine per device
// walks that device's op order, waiting on each op's dependency channels,
// executing the op, then signalling completion. On the first error the
// step is aborted — remaining ops are drained (signalled without
// executing) so no peer can block on a dependency that will never arrive,
// the gradient state is rolled back to the pre-step accumulators, and the
// error is surfaced after all devices joined.
func (e *Engine) runStep(micro []*data.Batch, totals pipemodel.Totals, refresh bool) (*StepResult, error) {
	nStages := e.cfg.Stages
	n := len(micro)
	nLayers := len(e.reps[0].stages[0].layers)
	st := &runState{
		e: e, micro: micro, totals: totals, refresh: refresh,
		done:      make([]chan struct{}, len(e.sched.Ops)),
		stageIn:   mat2(nStages, n),
		stageOut:  mat2(nStages, n),
		gradOut:   mat2(nStages, n),
		lossParts: make([]pipemodel.Loss, n),
		carried:   make([][]*tensor.Matrix, nStages),
		deltas:    make([][][]*tensor.Matrix, nStages),
		foldDone:  make([]sync.Once, nStages),
		foldErr:   make([]error, nStages),
		errs:      make([]error, e.sched.Devices),
		events:    make([][]pipeline.Event, e.sched.Devices),
		start:     time.Now(),
	}
	for i := range st.done {
		st.done[i] = make(chan struct{})
	}
	// Move the primary's pre-step gradient state aside (accumulate
	// semantics: the reduction re-adds it as its base) and start every
	// replica's accumulators from zero, so each backward's snapshot is
	// exactly its micro-batch's contribution.
	for s := 0; s < nStages; s++ {
		params := e.reps[0].stageParams[s]
		st.carried[s] = make([]*tensor.Matrix, len(params))
		for k, p := range params {
			st.carried[s][k] = tensor.GetClone(p.Grad)
			p.Grad.Zero()
		}
		st.deltas[s] = make([][]*tensor.Matrix, n)
		for m := 0; m < n; m++ {
			st.deltas[s][m] = make([]*tensor.Matrix, len(params))
		}
		for _, rep := range e.reps[1:] {
			for _, p := range rep.stageParams[s] {
				p.Grad.Zero()
			}
		}
	}
	if refresh {
		st.actsSnap = mat3(nStages, n, nLayers)
		st.gradsSnap = mat3(nStages, n, nLayers)
		st.curvA = mat3(nStages, nLayers, n)
		st.curvB = mat3(nStages, nLayers, n)
		st.rowsA = int3(nStages, nLayers, n)
		st.rowsB = int3(nStages, nLayers, n)
		st.finalized = make([][]bool, nStages)
		for s := range st.finalized {
			st.finalized[s] = make([]bool, nLayers)
		}
	}

	var wg sync.WaitGroup
	for d := 0; d < e.sched.Devices; d++ {
		wg.Add(1)
		go func(d int) {
			defer wg.Done()
			for _, id := range e.sched.Order[d] {
				op := e.sched.Ops[id]
				for _, dep := range op.Deps {
					<-st.done[dep]
				}
				if !st.failed.Load() {
					if err := st.exec(d, op); err != nil {
						st.errs[d] = fmt.Errorf("engine: device %d op %s: %w", d, op.Label(), err)
						st.failed.Store(true)
					}
				}
				close(st.done[id])
			}
		}(d)
	}
	wg.Wait()
	for _, err := range st.errs {
		if err != nil {
			st.rollback()
			return nil, err
		}
	}
	// The step committed: release the carried rollback state.
	for s := range st.carried {
		for k, c := range st.carried[s] {
			tensor.Put(c)
			st.carried[s][k] = nil
		}
	}

	res := &StepResult{DeviceBusy: make([]float64, e.sched.Devices), Refreshed: refresh}
	for _, part := range st.lossParts {
		res.Loss.Add(part)
	}
	for d := range st.events {
		var busy hardware.Microseconds
		for _, ev := range st.events[d] {
			busy += ev.Duration()
		}
		res.DeviceBusy[d] = float64(busy) / 1e6
	}
	e.lastTimeline = st.timeline()
	return res, nil
}

// rollback restores the pre-step gradient state after an aborted step:
// every stage gets its carried accumulators back — including stages whose
// reduction already committed, since the carried buffers live until the
// whole step succeeds — partial per-micro deltas are released, and every
// replica's accumulators are re-zeroed so the snapshot discipline of the
// next step starts clean.
func (st *runState) rollback() {
	for s := range st.carried {
		params := st.e.reps[0].stageParams[s]
		for k, p := range params {
			if st.carried[s][k] != nil {
				p.Grad.CopyFrom(st.carried[s][k])
				tensor.Put(st.carried[s][k])
				st.carried[s][k] = nil
			}
		}
		for m := range st.deltas[s] {
			for k, d := range st.deltas[s][m] {
				tensor.Put(d)
				st.deltas[s][m][k] = nil
			}
		}
		for _, rep := range st.e.reps[1:] {
			for _, p := range rep.stageParams[s] {
				p.Grad.Zero()
			}
		}
	}
}

// foldStages performs the gradient collective of every stage the op's
// device participates in, exactly once per stage (Once.Do blocks the other
// participants until the reduction finished — the rendezvous of the
// all-reduce). A chimera device hosts two stages and syncs both; every
// other topology syncs the op's own stage.
func (st *runState) foldStages(op *pipeline.Op) error {
	stages := []int{op.Stage}
	if st.e.cfg.Method == "chimera" {
		if up := st.e.cfg.Stages - 1 - op.Stage; up != op.Stage {
			stages = append(stages, up)
		}
	}
	for _, s := range stages {
		s := s
		st.foldDone[s].Do(func() {
			st.foldErr[s] = reduceGrads(st.e.reps[0].stageParams[s], st.carried[s], st.deltas[s])
		})
		if st.foldErr[s] != nil {
			return fmt.Errorf("gradient collective of stage %d: %w", s, st.foldErr[s])
		}
	}
	return nil
}

// exec dispatches one op. The optimizer update itself stays with the
// caller (OptStep anchors the gradient collective and is otherwise a
// no-op); SyncCurvature is a pure dependency barrier in this in-process
// realization — the factor fold reads every replica's partials directly.
func (st *runState) exec(d int, op *pipeline.Op) error {
	if hook := st.e.failOp; hook != nil {
		if err := hook(op); err != nil {
			return err
		}
	}
	switch op.Kind {
	case pipeline.Forward:
		return st.forward(d, op)
	case pipeline.Backward:
		return st.backward(d, op)
	case pipeline.Curvature:
		if st.refresh {
			return st.curvature(d, op)
		}
		return nil
	case pipeline.Inversion:
		if st.refresh {
			return st.inversion(d, op)
		}
		return nil
	case pipeline.Precondition:
		return st.precondition(d, op)
	case pipeline.SyncGrad:
		t0 := time.Since(st.start)
		if err := st.foldStages(op); err != nil {
			return err
		}
		st.record(d, op, t0)
		return nil
	case pipeline.OptStep:
		// The last anchor of the stage's tail: on W = 1 non-K-FAC
		// schedules (no SyncGrad, no Precondition) it is where the
		// gradient reduction lands. The optimizer itself stays with the
		// caller; the recorded event measures the fold (or the wait for
		// a peer performing it), keeping executed timelines honest about
		// the reduction cost at every W.
		t0 := time.Since(st.start)
		if err := st.foldStages(op); err != nil {
			return err
		}
		st.record(d, op, t0)
		return nil
	case pipeline.SyncCurvature:
		// Like Curvature/Inversion, only refresh steps perform (and
		// record) the curvature exchange; on stale steps the op is a
		// silent no-op so the executed timeline matches the work done.
		if st.refresh {
			st.record(d, op, time.Since(st.start))
		}
		return nil
	}
	return fmt.Errorf("unexpected op kind %v", op.Kind)
}

// forward embeds (stage 0) or receives the upstream activation, runs the
// replica's stage blocks, evaluates the loss on the last stage, and
// publishes the output for the next stage. On refresh steps it snapshots
// each dense layer's input activations — the A-factor statistics that rule
// 1 makes schedulable from this point on.
func (st *runState) forward(d int, op *pipeline.Op) error {
	s, m := op.Stage, st.gmicro(op)
	rep := st.e.reps[op.Replica]
	stg := rep.stages[s]
	mb := st.micro[m]
	st.e.stageMu[op.Replica][s].Lock()
	defer st.e.stageMu[op.Replica][s].Unlock()
	t0 := time.Since(st.start)

	var x *tensor.Matrix
	if stg.first {
		x = rep.model.EmbedForward(mb)
	} else {
		x = st.stageOut[s-1][m]
		if x == nil {
			return fmt.Errorf("no activation from stage %d for micro-batch %d", s-1, m)
		}
		st.stageIn[s][m] = x
	}
	y := stg.runBlocks(x, mb.BatchSize, mb.SeqLen)
	if stg.last {
		loss, err := rep.model.HeadLoss(mb, y, st.totals)
		if err != nil {
			return err
		}
		st.lossParts[m] = loss
	} else {
		// The stage output is a module-retained buffer that the next
		// forward through this stage will overwrite; hand the consumer
		// stage a pooled copy (returned to the pool after its backward).
		st.stageOut[s][m] = tensor.GetClone(y)
	}
	if st.refresh {
		// Snapshot the A-factor statistics into pooled buffers: the
		// layer-retained capture buffers are only valid until this
		// stage's next op, but the scheduled Curvature ops consume the
		// snapshots later, in the pipeline bubbles.
		for li, l := range stg.layers {
			st.actsSnap[s][m][li] = tensor.GetClone(l.CapturedInput())
		}
	}
	st.record(d, op, t0)
	return nil
}

// backward recomputes the stage's forward from the saved input (the
// paper's "R" configuration — recorded as its own Recompute event), then
// backpropagates: the last stage seeds the chain with the head's
// globally-scaled loss gradient, other stages consume the error signal of
// the stage after them, and stage 0 finishes into the embedding tables. On
// refresh steps it snapshots each dense layer's output gradients — the
// B-factor statistics of rule 1. Finally the micro-batch's accumulated
// parameter gradients move into their pooled collective delta buffers
// (zeroing the replica's accumulators for the next micro-batch).
func (st *runState) backward(d int, op *pipeline.Op) error {
	s, m := op.Stage, st.gmicro(op)
	rep := st.e.reps[op.Replica]
	stg := rep.stages[s]
	mb := st.micro[m]
	st.e.stageMu[op.Replica][s].Lock()
	defer st.e.stageMu[op.Replica][s].Unlock()
	t0 := time.Since(st.start)

	var x *tensor.Matrix
	if stg.first {
		x = rep.model.EmbedForward(mb)
	} else {
		x = st.stageIn[s][m]
		if x == nil {
			return fmt.Errorf("no saved input for micro-batch %d", m)
		}
	}
	y := stg.runBlocks(x, mb.BatchSize, mb.SeqLen)
	tRec := time.Since(st.start)
	st.recordKind(d, pipeline.Recompute, op, t0, tRec)

	var grad *tensor.Matrix
	if stg.last {
		var err error
		grad, err = rep.model.HeadGradient(mb, y, st.totals)
		if err != nil {
			return err
		}
	} else {
		grad = st.gradOut[s+1][m]
		if grad == nil {
			return fmt.Errorf("no error signal from stage %d for micro-batch %d", s+1, m)
		}
	}
	grad = stg.backBlocks(grad)
	if st.refresh {
		// Snapshot the B-factor statistics into pooled buffers (see the
		// A-factor snapshot in forward).
		for li, l := range stg.layers {
			st.gradsSnap[s][m][li] = tensor.GetClone(l.CapturedOutputGrad())
		}
	}
	if stg.first {
		rep.model.EmbedBackward(grad)
	} else {
		// Like forward activations, the outgoing error signal is a
		// module-retained buffer; publish a pooled copy.
		st.gradOut[s][m] = tensor.GetClone(grad)
	}
	// The micro-batch finished accumulating on this (replica, stage):
	// move its gradient contribution into the collective's delta slot.
	snapshotGradDeltas(rep.stageParams[s], st.deltas[s][m])
	// Recycle the pooled buffers the micro-batch consumed — the
	// activation received from the previous stage (kept for
	// recomputation) and the error signal from the next stage.
	if !stg.first {
		tensor.Put(st.stageIn[s][m])
		st.stageIn[s][m] = nil
		st.stageOut[s-1][m] = nil
	}
	if !stg.last {
		tensor.Put(st.gradOut[s+1][m])
		st.gradOut[s+1][m] = nil
	}
	st.recordKind(d, pipeline.Backward, op, tRec, time.Since(st.start))
	return nil
}

// curvature computes one micro-batch's partial Kronecker-factor product
// (U^T U) from the snapshotted statistics — the bubble-filling work of
// rule 1, at the factor granularity the packer scheduled. Partials land in
// global micro-batch slots, so the later factor fold reduces every
// replica's contributions in the same fixed order as the gradient
// collective.
func (st *runState) curvature(d int, op *pipeline.Op) error {
	s, m := op.Stage, st.gmicro(op)
	stg := st.e.reps[op.Replica].stages[s]
	li, factorB, err := stg.layerOf(op.Factor)
	if err != nil {
		return err
	}
	st.e.stageMu[op.Replica][s].Lock()
	defer st.e.stageMu[op.Replica][s].Unlock()
	t0 := time.Since(st.start)
	var stat *tensor.Matrix
	if factorB {
		stat = st.gradsSnap[s][m][li]
	} else {
		stat = st.actsSnap[s][m][li]
	}
	if stat == nil {
		return fmt.Errorf("no captured statistics for layer %d factor %d micro-batch %d", li, op.Factor, m)
	}
	// The partial Gram product U^T U goes into a pooled buffer (released
	// by the inversion op once it is folded into the factor sum), and the
	// statistics snapshot is recycled here — its only consumer.
	part := tensor.Get(stat.Cols, stat.Cols)
	tensor.TMatMulInto(part, stat, stat)
	if factorB {
		st.curvB[s][li][m] = part
		st.rowsB[s][li][m] = stat.Rows
		st.gradsSnap[s][m][li] = nil
	} else {
		st.curvA[s][li][m] = part
		st.rowsA[s][li][m] = stat.Rows
		st.actsSnap[s][m][li] = nil
	}
	tensor.Put(stat)
	st.record(d, op, t0)
	return nil
}

// inversion finalizes the layer's factors on first touch (folding the
// accumulated per-micro-batch products of every replica into the shared
// preconditioner's EMA, in ascending global micro-batch order — the
// distributed K-FAC factor exchange) and then refreshes the cached inverse
// of the op's factor — rule 2's unit of inversion work. The per-layer lock
// (instead of a stage-wide one) is what lets InversionParallel's
// round-robin sharding run different layers' inversions concurrently on
// different devices of the replica group.
func (st *runState) inversion(d int, op *pipeline.Op) error {
	s := op.Stage
	stg := st.e.reps[op.Replica].stages[s]
	li, factorB, err := stg.layerOf(op.Factor)
	if err != nil {
		return err
	}
	st.e.layerMu[s][li].Lock()
	defer st.e.layerMu[s][li].Unlock()
	t0 := time.Since(st.start)
	if !st.finalized[s][li] {
		newA, err := sumFactor(st.curvA[s][li], st.rowsA[s][li], 1)
		if err != nil {
			return fmt.Errorf("factor A of layer %d: %w", li, err)
		}
		scale := st.e.reps[0].model.KFACLossScale(st.totals)
		newB, err := sumFactor(st.curvB[s][li], st.rowsB[s][li], scale*scale)
		if err != nil {
			return fmt.Errorf("factor B of layer %d: %w", li, err)
		}
		if err := st.e.kfacPre[s].SetFactors(li, newA, newB); err != nil {
			return err
		}
		st.finalized[s][li] = true
		// The per-micro-batch partial products are folded in; recycle
		// their pooled buffers.
		for i, part := range st.curvA[s][li] {
			tensor.Put(part)
			st.curvA[s][li][i] = nil
		}
		for i, part := range st.curvB[s][li] {
			tensor.Put(part)
			st.curvB[s][li][i] = nil
		}
	}
	if err := st.e.kfacPre[s].InvertFactor(li, factorB); err != nil {
		return err
	}
	st.record(d, op, t0)
	return nil
}

// sumFactor folds per-micro-batch partial products into one factor:
// scale/N · Σ_m U_m^T U_m, summed in ascending global micro-batch order
// for determinism across replica counts and schedules.
func sumFactor(parts []*tensor.Matrix, rows []int, scale float64) (*tensor.Matrix, error) {
	var sum *tensor.Matrix
	var n int
	for m, p := range parts {
		if p == nil {
			return nil, fmt.Errorf("missing curvature contribution of micro-batch %d", m)
		}
		if sum == nil {
			sum = tensor.Zeros(p.Rows, p.Cols)
		}
		sum.AddInPlace(p)
		n += rows[m]
	}
	if sum == nil || n == 0 {
		return nil, fmt.Errorf("no curvature contributions")
	}
	sum.ScaleInPlace(scale / float64(n))
	return sum, nil
}

// precondition rewrites the stage's gradients with the cached (possibly
// stale) K-FAC inverses — the per-step Precondition op, "the only
// computational overhead of PipeFisher" (Figure 1). Only the primary
// replica's op does the work: the collective already reduced the group's
// gradients into the primary's accumulators, which are the only ones the
// caller's optimizer consumes. It first joins the stage's gradient
// collective, which on W = 1 schedules without SyncGrad ops (gpipe/1f1b)
// is where the reduction lands.
func (st *runState) precondition(d int, op *pipeline.Op) error {
	// t0 is taken before the fold so the recorded event covers the
	// gradient reduction this op anchors on W = 1 schedules, not only the
	// inverse application.
	t0 := time.Since(st.start)
	if err := st.foldStages(op); err != nil {
		return err
	}
	if st.e.kfacPre == nil || op.Replica != 0 {
		return nil
	}
	s := op.Stage
	st.e.stageMu[0][s].Lock()
	defer st.e.stageMu[0][s].Unlock()
	st.e.kfacPre[s].Precondition()
	st.record(d, op, t0)
	return nil
}

// record appends a measured event for op, ending now.
func (st *runState) record(d int, op *pipeline.Op, t0 time.Duration) {
	st.recordKind(d, op.Kind, op, t0, time.Since(st.start))
}

// recordKind appends a measured event, possibly under a different kind
// than the schedule op (Recompute segments of Backward ops).
func (st *runState) recordKind(d int, kind pipeline.WorkKind, op *pipeline.Op, t0, t1 time.Duration) {
	ev := op
	if kind != op.Kind {
		ev = &pipeline.Op{
			Kind: kind, Device: op.Device, Stage: op.Stage, Replica: op.Replica,
			MicroBatch: op.MicroBatch, Factor: op.Factor, Step: op.Step,
		}
	}
	start := hardware.Microseconds(t0.Microseconds())
	end := hardware.Microseconds(t1.Microseconds())
	if end < start {
		end = start
	}
	st.events[d] = append(st.events[d], pipeline.Event{Op: ev, Start: start, End: end})
}

// timeline assembles the executed step's measured timeline, recording the
// intra-op parallelism the kernels ran with so the executed trace can be
// compared against simulated ones on equal terms.
func (st *runState) timeline() *pipeline.Timeline {
	tl := &pipeline.Timeline{
		Name:          st.e.sched.Name + " (executed)",
		Devices:       st.e.sched.Devices,
		Steps:         1,
		Events:        st.events,
		Parallelism:   st.e.workers,
		OpParallelism: st.e.opShare,
	}
	for d := range tl.Events {
		for _, ev := range tl.Events[d] {
			if ev.End > tl.Makespan {
				tl.Makespan = ev.End
			}
		}
	}
	tl.StepEnd = []hardware.Microseconds{tl.Makespan}
	return tl
}

func mat2(a, b int) [][]*tensor.Matrix {
	out := make([][]*tensor.Matrix, a)
	for i := range out {
		out[i] = make([]*tensor.Matrix, b)
	}
	return out
}

func mat3(a, b, c int) [][][]*tensor.Matrix {
	out := make([][][]*tensor.Matrix, a)
	for i := range out {
		out[i] = mat2(b, c)
	}
	return out
}

func int3(a, b, c int) [][][]int {
	out := make([][][]int, a)
	for i := range out {
		out[i] = make([][]int, b)
		for j := range out[i] {
			out[i][j] = make([]int, c)
		}
	}
	return out
}
