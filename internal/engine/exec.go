package engine

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/data"
	"repro/internal/hardware"
	"repro/internal/pipeline"
	"repro/internal/pipemodel"
	"repro/internal/tensor"
)

// errRoundAborted marks a device that was parked at a step barrier when
// another device's failure aborted the round; it is never the root cause.
var errRoundAborted = errors.New("round aborted by another device's failure")

// runState is the transient dataflow of one executed refresh round — K =
// RefreshSteps consecutive training steps walked by one persistent set of
// per-device goroutines, K = 1 being the ordinary single step. The per-op
// completion channels realize the schedule's dependency edges (cross-step
// edges — optimizer-step to next forward, curvature fold to a later step's
// inversion — through the very same mechanism as intra-step ones);
// activations and error signals are published into the staged arrays by
// their producing op and read by consumers only after the producer's
// channel closed, so the arrays need no locking of their own.
//
// Micro-batch indexing: within a step, arrays use the *global* micro-batch
// index (replica*MicroBatches + local micro); across the round they use
// the flat index step*perStep + gmicro. Replicas write disjoint slots, and
// every reduction walks its step's slots in ascending global order — the
// fixed collective order that makes gradients bit-identical across W. The
// round's K-FAC statistics come from the window's FIRST step (the batch
// whose curvature the round folds) and live in engine-owned generation
// pools (kfacGenPool), one step wide regardless of K: cur is the
// generation this round collects, pending the queue of generations
// carried from earlier rounds whose Generation = g ops — overlapped
// rounds — fold and invert here, slot g-1 holding the pool collected g
// rounds ago. cur may be nil (stale round) and pending slots may be nil
// (nothing pending at that lag); serialized rounds never have pending
// generations.
type runState struct {
	e       *Engine
	micro   [][]*data.Batch    // [step][gmicro], perStep = Replicas*MicroBatches each
	totals  []pipemodel.Totals // per step: that step's loss denominators
	refresh bool               // whether this round collects its packed refresh generation
	cur     *kfacGenPool       // the generation being collected (nil unless refresh)
	pending []*kfacGenPool     // carried generations by lag (slot g-1 = collected g rounds ago)

	done []chan struct{} // per op, closed on completion (or skip)

	stageIn  [][]*tensor.Matrix // [stage][flat] stage inputs saved for recomputation
	stageOut [][]*tensor.Matrix // [stage][flat] activations leaving a stage
	gradOut  [][]*tensor.Matrix // [stage][flat] error signals leaving a stage

	lossParts [][]pipemodel.Loss // [step][gmicro], written by the last stage

	// Gradient-collective state, per step of the round: carried holds the
	// step's pre-step accumulators (restored as the base of the reduction;
	// step 0's captured in the round prologue, later steps' at the previous
	// step's commit barrier), deltas the per-micro-batch contributions
	// snapshotted by each backward, foldDone the per-(step, stage)
	// once-guards of the reduction (any participant of the stage's
	// collective may perform it; latecomers block until it finished), and
	// foldErr a reduction failure to surface.
	carried  [][][]*tensor.Matrix   // [step][stage][param]
	deltas   [][][][]*tensor.Matrix // [step][stage][gmicro][param]
	foldDone [][]sync.Once          // [step][stage]
	foldErr  [][]error              // [step][stage], written inside foldDone

	// Step-commit barrier: every step's OptStep ops rendezvous here after
	// folding their stages; the last arriver commits the step (optimizer
	// callback, then next-step gradient state and parameter broadcast)
	// while every other device is parked and no next-step op can have
	// started — the round-internal step boundary.
	optMu     sync.Mutex
	optLeft   []int           // per step: OptStep arrivals outstanding
	optDone   []chan struct{} // per step, closed once the step committed
	optErr    []error         // per step, written by the committing device
	committed int             // steps whose optimizer callback completed

	failMu    sync.Mutex // guards errs: first error per device wins
	errs      []error    // per device
	failed    atomic.Bool
	abortC    chan struct{} // closed on first failure: unparks barrier waiters
	abortOnce sync.Once

	// resilient selects the fault-tolerant execution path (resilience.go):
	// injector consultation, watchdog arming, retry/degrade. False — no
	// fault plan, no timeout, no retries — takes the exact pre-fault code
	// path, so the resilience layer costs nothing when unused.
	resilient bool
	wd        *watchdog // armed per-op deadlines, nil unless OpTimeout > 0

	// Degraded-mode record: set when a side-path failure past the retry
	// budget downgraded the round instead of aborting it (the first
	// failure's description is kept for StepResult.DegradedReason).
	degMu          sync.Mutex
	degraded       bool
	degradedReason string

	events [][]pipeline.Event // per device, measured wall-clock
	start  time.Time
}

// gmicro maps an op to its global micro-batch index within its step.
func (st *runState) gmicro(op *pipeline.Op) int {
	return op.Replica*st.e.cfg.MicroBatches + op.MicroBatch
}

// flat maps an op to its round-wide micro-batch slot (activations and
// error signals of different steps must not collide).
func (st *runState) flat(op *pipeline.Op) int {
	return op.Step*len(st.micro[0]) + st.gmicro(op)
}

// genPool resolves the statistics pool a refresh op works on: the round's
// own collection pool for Generation-0 ops (nil when this round does not
// refresh — the op no-ops, the stale-round discipline), the pool collected
// g rounds ago for Generation-g carried ops (nil when no generation is
// pending at that lag). The pool-per-generation buffering is what keeps a
// new window's snapshots from clobbering factors still being folded.
func (st *runState) genPool(op *pipeline.Op) *kfacGenPool {
	if g := op.Generation; g > 0 {
		if g-1 < len(st.pending) {
			return st.pending[g-1]
		}
		return nil
	}
	if st.refresh {
		return st.cur
	}
	return nil
}

// fail records a device failure and aborts the round: the failed flag stops
// further execution, and the abort channel unparks any device waiting at a
// step-commit barrier whose quorum will never arrive. The first error per
// device wins — except that a real root cause replaces a parked-at-barrier
// errRoundAborted — so a watchdog's attributed stall report is not
// clobbered when the stalled op itself later returns.
func (st *runState) fail(d int, err error) {
	st.failMu.Lock()
	if st.errs[d] == nil || (errors.Is(st.errs[d], errRoundAborted) && !errors.Is(err, errRoundAborted)) {
		st.errs[d] = err
	}
	st.failMu.Unlock()
	st.failed.Store(true)
	st.abortOnce.Do(func() {
		close(st.abortC)
		// Poison the transport epoch so peers blocked in a collective this
		// rank will never complete fail promptly with the attributed reason
		// (and replay from checkpoint in lockstep) instead of hanging. No-op
		// on the loopback group.
		st.e.group.Abort(err)
	})
}

// runRound executes the engine's schedule once — all RefreshSteps steps of
// it: one persistent goroutine per device walks that device's whole op
// order with no teardown between steps, waiting on each op's dependency
// channels, executing the op, then signalling completion. Step boundaries
// are realized by the OptStep commit barrier (optimizer callback, gradient
// re-zeroing, parameter broadcast), not by joining the goroutines. On the
// first error the round is aborted — remaining ops are drained (signalled
// without executing) so no peer can block on a dependency that will never
// arrive, the gradient state is rolled back to the first uncommitted
// step's pre-step accumulators, and the error is surfaced after all
// devices joined, along with how many steps had already committed.
func (e *Engine) runRound(micro [][]*data.Batch, totals []pipemodel.Totals, refresh bool, cur *kfacGenPool, pending []*kfacGenPool) ([]*StepResult, int, error) {
	nStages := e.cfg.Stages
	r := len(micro)
	perStep := len(micro[0])
	nFlat := r * perStep
	st := &runState{
		e: e, micro: micro, totals: totals, refresh: refresh, cur: cur, pending: pending,
		done:      make([]chan struct{}, len(e.sched.Ops)),
		stageIn:   mat2(nStages, nFlat),
		stageOut:  mat2(nStages, nFlat),
		gradOut:   mat2(nStages, nFlat),
		lossParts: make([][]pipemodel.Loss, r),
		carried:   make([][][]*tensor.Matrix, r),
		deltas:    make([][][][]*tensor.Matrix, r),
		foldDone:  make([][]sync.Once, r),
		foldErr:   make([][]error, r),
		optLeft:   make([]int, r),
		optDone:   make([]chan struct{}, r),
		optErr:    make([]error, r),
		errs:      make([]error, e.sched.Devices),
		abortC:    make(chan struct{}),
		events:    make([][]pipeline.Event, e.sched.Devices),
		start:     time.Now(),
	}
	for i := range st.done {
		st.done[i] = make(chan struct{})
	}
	for j := 0; j < r; j++ {
		st.lossParts[j] = make([]pipemodel.Loss, perStep)
		st.carried[j] = make([][]*tensor.Matrix, nStages)
		st.deltas[j] = make([][][]*tensor.Matrix, nStages)
		st.foldDone[j] = make([]sync.Once, nStages)
		st.foldErr[j] = make([]error, nStages)
		st.optDone[j] = make(chan struct{})
		for s := 0; s < nStages; s++ {
			params := e.reps[0].stageParams[s]
			st.carried[j][s] = make([]*tensor.Matrix, len(params))
			st.deltas[j][s] = make([][]*tensor.Matrix, perStep)
			for m := 0; m < perStep; m++ {
				st.deltas[j][s][m] = make([]*tensor.Matrix, len(params))
			}
		}
	}
	for _, op := range e.sched.Ops {
		if op.Kind == pipeline.OptStep {
			st.optLeft[op.Step]++
		}
	}
	// Move the primary's pre-round gradient state aside (accumulate
	// semantics: step 0's reduction re-adds it as its base) and start every
	// replica's accumulators from zero, so each backward's snapshot is
	// exactly its micro-batch's contribution. Later steps get the same
	// treatment at the previous step's commit barrier.
	st.captureStepBase(0)

	// The resilience layer (injector, watchdog, retry/degrade) engages only
	// when something configured it; the default engine takes the branch-free
	// pre-fault path below.
	st.resilient = e.inj != nil || e.cfg.OpTimeout > 0 || e.cfg.OpRetries > 0
	if e.cfg.OpTimeout > 0 {
		st.startWatchdog(e.cfg.OpTimeout)
	}

	var wg sync.WaitGroup
	for d := 0; d < e.sched.Devices; d++ {
		wg.Add(1)
		go func(d int) {
			defer wg.Done()
			for _, id := range e.sched.Order[d] {
				op := e.sched.Ops[id]
				for _, dep := range op.Deps {
					if st.resilient {
						// Abort-aware wait: after an abort nothing executes
						// (only drains), so a dep whose producer is hung —
						// the case the watchdog attributes — must not block
						// the drain of every other device.
						select {
						case <-st.done[dep]:
						case <-st.abortC:
						}
						continue
					}
					<-st.done[dep]
				}
				if !st.failed.Load() {
					var err error
					if st.resilient {
						err = st.execResilient(d, op)
					} else {
						err = st.exec(d, op)
					}
					if err != nil {
						st.fail(d, fmt.Errorf("engine: device %d op %s: %w", d, op.Label(), err))
					}
				}
				close(st.done[id])
			}
		}(d)
	}
	wg.Wait()
	if st.wd != nil {
		st.wd.stopAndJoin()
	}
	var root, aborted error
	for _, err := range st.errs {
		if err == nil {
			continue
		}
		if errors.Is(err, errRoundAborted) {
			if aborted == nil {
				aborted = err
			}
			continue
		}
		if root == nil {
			root = err
		}
	}
	if root == nil {
		root = aborted
	}
	if root != nil {
		st.rollback()
		// Committed steps really happened (their optimizer updates stand),
		// so their results are returned alongside the error — the caller's
		// loss curve must not silently skip steps it can never re-run.
		return st.results(st.committed), st.committed, root
	}
	// The round committed: release the carried rollback state of every step.
	st.releaseCarried()
	e.lastTimeline = st.timeline()
	return st.results(r), st.committed, nil
}

// results assembles the StepResults of the round's first upTo steps (all of
// them on success; the committed prefix on an abort).
func (st *runState) results(upTo int) []*StepResult {
	res := make([]*StepResult, upTo)
	for j := 0; j < upTo; j++ {
		res[j] = &StepResult{
			DeviceBusy: make([]float64, st.e.sched.Devices), Refreshed: st.refresh,
			Degraded: st.degraded, DegradedReason: st.degradedReason,
		}
		for _, part := range st.lossParts[j] {
			res[j].Loss.Add(part)
		}
	}
	for d := range st.events {
		for _, ev := range st.events[d] {
			if j := ev.Op.Step; j >= 0 && j < upTo {
				res[j].DeviceBusy[d] += float64(ev.Duration()) / 1e6
			}
		}
	}
	return res
}

// captureStepBase prepares step j's gradient-collective state: it
// snapshots the primary's accumulators as the step's carried reduction
// base (accumulate semantics — the fold re-adds it), zeroes them so each
// backward's delta is exactly its micro-batch's contribution, and zeroes
// every replica's accumulators. The round prologue uses it for step 0 and
// the commit barrier for each following step, so the preparation sequence
// exists once.
func (st *runState) captureStepBase(j int) {
	for s := range st.e.reps[0].stageParams {
		for k, p := range st.e.reps[0].stageParams[s] {
			st.carried[j][s][k] = tensor.GetClone(p.Grad)
			p.Grad.Zero()
		}
		for _, rep := range st.e.reps[1:] {
			for _, p := range rep.stageParams[s] {
				p.Grad.Zero()
			}
		}
	}
}

// releaseCarried returns every captured carried buffer to the pool.
func (st *runState) releaseCarried() {
	for j := range st.carried {
		for s := range st.carried[j] {
			for k, c := range st.carried[j][s] {
				if c != nil {
					tensor.Put(c)
					st.carried[j][s][k] = nil
				}
			}
		}
	}
}

// rollback restores the gradient state after an aborted round. Committed
// steps stand — their optimizer updates already happened and cannot be
// undone without parameter snapshots — so the restore target is the first
// *uncommitted* step: every stage gets that step's carried accumulators
// back (including stages whose reduction already committed, since the
// carried buffers live until the whole round succeeded), partial per-micro
// deltas of every step are released, and every replica's accumulators are
// re-zeroed so the snapshot discipline of the next round starts clean.
func (st *runState) rollback() {
	j := st.committed // the step that failed to commit
	if j < len(st.carried) {
		for s := range st.carried[j] {
			params := st.e.reps[0].stageParams[s]
			for k, p := range params {
				if st.carried[j][s][k] != nil {
					p.Grad.CopyFrom(st.carried[j][s][k])
				}
			}
		}
	}
	st.releaseCarried()
	for j := range st.deltas {
		for s := range st.deltas[j] {
			for m := range st.deltas[j][s] {
				for k, d := range st.deltas[j][s][m] {
					if d != nil {
						tensor.Put(d)
						st.deltas[j][s][m][k] = nil
					}
				}
			}
		}
	}
	// In-flight activation hand-offs and error signals are pooled clones
	// (published by forward/backward, normally recycled by their consumer's
	// backward); an abort strands whichever ones were never consumed.
	// stageIn[s] aliases stageOut[s-1] for the same slot — a consumer stage
	// saves the producer's published clone as its recomputation input — so
	// the sweep dedupes by pointer before returning buffers to the pool.
	seen := make(map[*tensor.Matrix]bool)
	putOnce := func(arr [][]*tensor.Matrix) {
		for s := range arr {
			for m, buf := range arr[s] {
				if buf != nil && !seen[buf] {
					seen[buf] = true
					tensor.Put(buf)
				}
				arr[s][m] = nil
			}
		}
	}
	putOnce(st.stageIn)
	putOnce(st.stageOut)
	putOnce(st.gradOut)
	for _, rep := range st.e.reps[1:] {
		for s := range rep.stageParams {
			for _, p := range rep.stageParams[s] {
				p.Grad.Zero()
			}
		}
	}
}

// foldStages performs the gradient collective of every stage the op's
// device participates in — for the op's step — exactly once per (step,
// stage) (Once.Do blocks the other participants until the reduction
// finished — the rendezvous of the all-reduce), routed through the
// engine's transport group. A chimera device hosts two stages and syncs
// both; every other topology syncs the op's own stage. Returns the bytes
// this call actually put on the wire (zero for a latecomer that only
// waited on another participant's fold).
func (st *runState) foldStages(op *pipeline.Op) (int64, error) {
	stages := []int{op.Stage}
	if st.e.cfg.Method == "chimera" {
		if up := st.e.cfg.Stages - 1 - op.Stage; up != op.Stage {
			stages = append(stages, up)
		}
	}
	j := op.Step
	var bytes int64
	for _, s := range stages {
		s := s
		st.foldDone[j][s].Do(func() {
			var nb int64
			nb, st.foldErr[j][s] = foldParams(st.e.group, st.e.foldNames[s], st.e.foldScratch[s],
				st.e.reps[0].stageParams[s], st.carried[j][s], st.deltas[j][s])
			bytes += nb
		})
		if st.foldErr[j][s] != nil {
			return bytes, fmt.Errorf("gradient collective of stage %d step %d: %w", s, j, st.foldErr[j][s])
		}
	}
	return bytes, nil
}

// arriveOptBarrier joins the op's step-commit barrier. The last OptStep of
// the step to arrive commits it (commitStep) while every other device is
// parked here and no next-step op can have started — the commit runs with
// exclusive access to all parameters. Waiters unblock either on the commit
// or on a round abort (a peer failed and its OptStep will never arrive).
func (st *runState) arriveOptBarrier(d int, op *pipeline.Op) error {
	j := op.Step
	st.optMu.Lock()
	st.optLeft[j]--
	last := st.optLeft[j] == 0
	st.optMu.Unlock()
	if last {
		st.optErr[j] = st.commitStep(j)
		close(st.optDone[j])
		return st.optErr[j]
	}
	// A barrier park is a legitimate, possibly long wait on the step's
	// other devices — not this device's stall: disarm its watchdog slot
	// while parked (no-op when no watchdog is armed).
	st.disarmWatchdog(d)
	select {
	case <-st.optDone[j]:
		return st.optErr[j]
	case <-st.abortC:
		return errRoundAborted
	}
}

// commitStep finishes step j inside the round: it fires the caller's
// optimizer callback (the real parameter update — all folds and
// preconditions of the step are complete, because every device's OptStep
// has arrived), then prepares step j+1 exactly the way the round prologue
// prepared step 0 — primary gradient accumulators zeroed and captured as
// the next carried base, replica accumulators zeroed, and the updated
// primary parameters re-broadcast to every replica.
func (st *runState) commitStep(j int) error {
	e := st.e
	if e.multiRank {
		// Reduce the step's loss across the group before anything commits:
		// every rank then reports the global batch's loss, and — because a
		// NaN anywhere in the group lands in every rank's reduced loss — the
		// health scan below aborts symmetrically on all ranks, keeping their
		// step counts (and checkpoint replays) in lockstep.
		if err := st.syncLoss(j); err != nil {
			return err
		}
	}
	if e.inj != nil {
		// Fault plans can corrupt activations, deltas, or accumulators with
		// NaN; committing a poisoned step would destroy the parameters with
		// no way back. Scan losses and reduced gradients before the
		// optimizer fires — an attributed abort here is what checkpoint/
		// replay recovers from. Injector-gated: the scan costs a pass over
		// the parameters, which the fault-free fast path must not pay.
		if err := st.scanStepHealth(j); err != nil {
			return err
		}
	}
	if e.optApply != nil {
		if err := e.optApply(e.stepIndex + j); err != nil {
			return fmt.Errorf("optimizer callback at step %d: %w", e.stepIndex+j, err)
		}
		// When the engine owns the optimizer it also owns the zeroing half
		// of the classic ZeroGrads / TrainStep / Step loop — after every
		// step, including the round's last, so the next round starts from
		// clean accumulators exactly like the manual loop would.
		for _, p := range e.reps[0].params {
			p.Grad.Zero()
		}
	}
	st.committed = j + 1
	if j == len(st.micro)-1 {
		return nil // round over; post-round cleanup happens after the join
	}
	st.captureStepBase(j + 1)
	return e.broadcastParams()
}

// exec dispatches one op. SyncCurvature is a pure dependency barrier in
// this in-process realization — the factor fold reads every replica's
// partials directly. OptStep is where a step commits: it anchors the
// step's gradient collective and then rendezvouses with the step's other
// OptStep ops so the optimizer fires exactly once per step, inside the
// round.
func (st *runState) exec(d int, op *pipeline.Op) error {
	if hook := st.e.failOp; hook != nil {
		if err := hook(op); err != nil {
			return err
		}
	}
	switch op.Kind {
	case pipeline.Forward:
		return st.forward(d, op)
	case pipeline.Backward:
		return st.backward(d, op)
	case pipeline.Curvature:
		if pool := st.genPool(op); pool != nil {
			return st.curvature(d, op, pool)
		}
		return nil
	case pipeline.Inversion:
		if pool := st.genPool(op); pool != nil {
			return st.inversion(d, op, pool)
		}
		return nil
	case pipeline.Precondition:
		return st.precondition(d, op)
	case pipeline.SyncGrad:
		t0 := time.Since(st.start)
		bytes, err := st.foldStages(op)
		if err != nil {
			return err
		}
		st.recordComm(d, op, t0, bytes)
		return nil
	case pipeline.OptStep:
		// The last anchor of the stage's step tail: on W = 1 non-K-FAC
		// schedules (no SyncGrad, no Precondition) it is where the
		// gradient reduction lands; on every schedule it is where the
		// step's commit barrier sits. The recorded event measures the
		// fold, the rendezvous wait, and (on the committing device) the
		// optimizer callback and broadcast, keeping executed timelines
		// honest about where step-boundary time goes.
		t0 := time.Since(st.start)
		bytes, err := st.foldStages(op)
		if err != nil {
			return err
		}
		if err := st.arriveOptBarrier(d, op); err != nil {
			return err
		}
		st.recordComm(d, op, t0, bytes)
		return nil
	case pipeline.SyncCurvature:
		// Like Curvature/Inversion, the exchange only happens for a live
		// generation (the round's own, or — Generation = 1 — a carried
		// one); otherwise the op is a silent no-op so the executed timeline
		// matches the work done.
		if st.genPool(op) != nil {
			st.record(d, op, time.Since(st.start))
		}
		return nil
	}
	return fmt.Errorf("unexpected op kind %v", op.Kind)
}

// forward embeds (stage 0) or receives the upstream activation, runs the
// replica's stage blocks, evaluates the loss on the last stage, and
// publishes the output for the next stage. On the first step of a refresh
// round it snapshots each dense layer's input activations — the A-factor
// statistics that rule 1 makes schedulable from this point on, for the
// whole window.
func (st *runState) forward(d int, op *pipeline.Op) error {
	s, m := op.Stage, st.flat(op)
	rep := st.e.reps[op.Replica]
	stg := rep.stages[s]
	mb := st.micro[op.Step][st.gmicro(op)]
	st.e.stageMu[op.Replica][s].Lock()
	defer st.e.stageMu[op.Replica][s].Unlock()
	if st.e.shard != nil {
		// ZeRO gather-on-use: attach the stage's non-owned parameter values
		// for the duration of this op (released before the lock drops).
		st.e.gatherStage(op.Replica, s, false)
		defer st.e.releaseStage(op.Replica, s)
	}
	t0 := time.Since(st.start)

	var x *tensor.Matrix
	if stg.first {
		x = rep.model.EmbedForward(mb)
	} else {
		x = st.stageOut[s-1][m]
		if x == nil {
			return fmt.Errorf("no activation from stage %d for micro-batch slot %d", s-1, m)
		}
		st.stageIn[s][m] = x
	}
	y := stg.runBlocks(x, mb.BatchSize, mb.SeqLen)
	if stg.last {
		loss, err := rep.model.HeadLoss(mb, y, st.totals[op.Step])
		if err != nil {
			return err
		}
		st.lossParts[op.Step][st.gmicro(op)] = loss
	} else {
		// The stage output is a module-retained buffer that the next
		// forward through this stage will overwrite; hand the consumer
		// stage a pooled copy (returned to the pool after its backward).
		st.stageOut[s][m] = tensor.GetClone(y)
	}
	if st.refresh && op.Step == 0 {
		// Snapshot the A-factor statistics into the collecting
		// generation's pool: the layer-retained capture buffers are only
		// valid until this stage's next op, but the scheduled Curvature
		// ops consume the snapshots later — in the bubbles of whichever
		// step the packer chose, possibly the NEXT round's (carried ops
		// under overlap), which is why the pool is engine-owned.
		// SnapClone narrows to float32 when the compute mode asks for it:
		// the snapshots dominate Msave_err, and the Gram reduction widens
		// exactly, so narrowing here is the float32 mode's memory win.
		for li, l := range stg.layers {
			st.cur.actsSnap[s][st.gmicro(op)][li] = tensor.SnapClone(l.CapturedInput())
		}
	}
	st.record(d, op, t0)
	return nil
}

// backward recomputes the stage's forward from the saved input (the
// paper's "R" configuration — recorded as its own Recompute event), then
// backpropagates: the last stage seeds the chain with the head's
// globally-scaled loss gradient, other stages consume the error signal of
// the stage after them, and stage 0 finishes into the embedding tables. On
// the first step of a refresh round it snapshots each dense layer's output
// gradients — the B-factor statistics of rule 1. Finally the micro-batch's
// accumulated parameter gradients move into their pooled collective delta
// buffers (zeroing the replica's accumulators for the next micro-batch).
func (st *runState) backward(d int, op *pipeline.Op) error {
	s, m := op.Stage, st.flat(op)
	rep := st.e.reps[op.Replica]
	stg := rep.stages[s]
	mb := st.micro[op.Step][st.gmicro(op)]
	st.e.stageMu[op.Replica][s].Lock()
	defer st.e.stageMu[op.Replica][s].Unlock()
	if st.e.shard != nil {
		// ZeRO gather-on-use, backward form: values for the recompute plus
		// zeroed gradient accumulators — the delta snapshot below moves the
		// accumulated contribution out before the release returns the
		// buffers to the pool.
		st.e.gatherStage(op.Replica, s, true)
		defer st.e.releaseStage(op.Replica, s)
	}
	t0 := time.Since(st.start)

	var x *tensor.Matrix
	if stg.first {
		x = rep.model.EmbedForward(mb)
	} else {
		x = st.stageIn[s][m]
		if x == nil {
			return fmt.Errorf("no saved input for micro-batch slot %d", m)
		}
	}
	y := stg.runBlocks(x, mb.BatchSize, mb.SeqLen)
	tRec := time.Since(st.start)
	st.recordKind(d, pipeline.Recompute, op, t0, tRec)

	var grad *tensor.Matrix
	if stg.last {
		var err error
		grad, err = rep.model.HeadGradient(mb, y, st.totals[op.Step])
		if err != nil {
			return err
		}
	} else {
		grad = st.gradOut[s+1][m]
		if grad == nil {
			return fmt.Errorf("no error signal from stage %d for micro-batch slot %d", s+1, m)
		}
	}
	grad = stg.backBlocks(grad)
	if st.refresh && op.Step == 0 {
		// Snapshot the B-factor statistics into the collecting
		// generation's pool (see the A-factor snapshot in forward).
		// In float32 mode the layer's capture already lives in a narrow
		// buffer; Snap.Clone copies it without a widen/narrow round trip.
		for li, l := range stg.layers {
			st.cur.gradsSnap[s][st.gmicro(op)][li] = l.CapturedOutputGradSnap().Clone()
		}
	}
	if stg.first {
		rep.model.EmbedBackward(grad)
	} else {
		// Like forward activations, the outgoing error signal is a
		// module-retained buffer; publish a pooled copy.
		st.gradOut[s][m] = tensor.GetClone(grad)
	}
	// The micro-batch finished accumulating on this (replica, stage):
	// move its gradient contribution into the collective's delta slot.
	snapshotGradDeltas(rep.stageParams[s], st.deltas[op.Step][s][st.gmicro(op)])
	// Recycle the pooled buffers the micro-batch consumed — the
	// activation received from the previous stage (kept for
	// recomputation) and the error signal from the next stage.
	if !stg.first {
		tensor.Put(st.stageIn[s][m])
		st.stageIn[s][m] = nil
		st.stageOut[s-1][m] = nil
	}
	if !stg.last {
		tensor.Put(st.gradOut[s+1][m])
		st.gradOut[s+1][m] = nil
	}
	st.recordKind(d, pipeline.Backward, op, tRec, time.Since(st.start))
	return nil
}

// curvature computes one micro-batch's partial Kronecker-factor product
// (U^T U) from the statistics snapshotted in its generation's first step —
// the bubble-filling work of rule 1, at the factor granularity the packer
// scheduled, in whichever step's bubble the packer placed it (a carried op
// runs one window later, against the previous generation's pool). Partials
// land in global micro-batch slots, so the later factor fold reduces every
// replica's contributions in the same fixed order as the gradient
// collective.
func (st *runState) curvature(d int, op *pipeline.Op, pool *kfacGenPool) error {
	s, m := op.Stage, st.gmicro(op)
	stg := st.e.reps[op.Replica].stages[s]
	li, factorB, err := stg.layerOf(op.Factor)
	if err != nil {
		return err
	}
	st.e.stageMu[op.Replica][s].Lock()
	defer st.e.stageMu[op.Replica][s].Unlock()
	t0 := time.Since(st.start)
	var stat tensor.Snap
	if factorB {
		stat = pool.gradsSnap[s][m][li]
	} else {
		stat = pool.actsSnap[s][m][li]
	}
	if !stat.Valid() {
		return fmt.Errorf("no captured statistics for layer %d factor %d micro-batch %d", li, op.Factor, m)
	}
	// The partial Gram product U^T U goes into a pooled buffer (released
	// by the inversion op once it is folded into the factor sum), and the
	// statistics snapshot is recycled here — its only consumer. The partial
	// stays float64 even when the snapshot is a float32 Snap: factor sums
	// and EMAs accumulate across micro-batches and rounds, where narrow
	// accumulation would compound.
	part := tensor.Get(stat.Cols(), stat.Cols())
	stat.GramInto(part)
	if factorB {
		pool.curvB[s][li][m] = part
		pool.rowsB[s][li][m] = stat.Rows()
		pool.gradsSnap[s][m][li] = tensor.Snap{}
	} else {
		pool.curvA[s][li][m] = part
		pool.rowsA[s][li][m] = stat.Rows()
		pool.actsSnap[s][m][li] = tensor.Snap{}
	}
	stat.Release()
	st.record(d, op, t0)
	return nil
}

// inversion finalizes the layer's factors on first touch of its generation
// (folding the accumulated per-micro-batch products of every replica into
// the shared preconditioner's EMA, in ascending global micro-batch order —
// the distributed K-FAC factor exchange) and then refreshes the cached
// inverse of the op's factor — rule 2's unit of inversion work. The
// per-layer lock (instead of a stage-wide one) is what lets
// InversionParallel's round-robin sharding run different layers' inversions
// concurrently on different devices of the replica group. In a multi-step
// round the op may execute in a later step's bubble — or, carried under
// overlapped rounds, in the NEXT round's bubbles — and the generation pool
// keeps the fold exact either way: the fold marker and the loss scale
// belong to the pool, so a carried fold uses its own generation's
// statistics batch, and the cross-generation dependency edges order a
// layer's carried fold before the newer generation folds on top.
func (st *runState) inversion(d int, op *pipeline.Op, pool *kfacGenPool) error {
	s := op.Stage
	stg := st.e.reps[op.Replica].stages[s]
	li, factorB, err := stg.layerOf(op.Factor)
	if err != nil {
		return err
	}
	st.e.layerMu[s][li].Lock()
	defer st.e.layerMu[s][li].Unlock()
	t0 := time.Since(st.start)
	var bytes int64
	if !pool.folded[s][li] {
		fs := st.e.kfacFold[s][li]
		newA, nbA, err := st.e.foldFactor(fs.nameA, fs.nameRA, fs, pool.curvA[s][li], pool.rowsA[s][li], 1)
		if err != nil {
			return fmt.Errorf("factor A of layer %d: %w", li, err)
		}
		// The statistics — and therefore the loss scale — come from the
		// generation's own statistics batch (its collect round's first
		// step), not the folding round's.
		scale := st.e.reps[0].model.KFACLossScale(pool.totals)
		newB, nbB, err := st.e.foldFactor(fs.nameB, fs.nameRB, fs, pool.curvB[s][li], pool.rowsB[s][li], scale*scale)
		if err != nil {
			tensor.Put(newA)
			return fmt.Errorf("factor B of layer %d: %w", li, err)
		}
		bytes = nbA + nbB
		if st.e.inj != nil && (newA.HasNaN() || newB.HasNaN()) {
			// Corrupted partials must not poison the preconditioner's EMA —
			// SetFactors folds into long-lived state no retry could repair.
			// Failing before the fold leaves the partials in place, so a
			// retry re-sums them and, still poisoned, the op degrades.
			tensor.Put(newA)
			tensor.Put(newB)
			return fmt.Errorf("NaN/Inf in folded curvature factors of layer %d stage %d", li, s)
		}
		if err := st.e.kfacPre[s].SetFactors(li, newA, newB); err != nil {
			return err
		}
		// SetFactors copies into the preconditioner's own state (it never
		// retains the arguments), so the fold's pooled sums go straight
		// back to the workspace pool.
		tensor.Put(newA)
		tensor.Put(newB)
		pool.folded[s][li] = true
		// The per-micro-batch partial products are folded in; recycle
		// their pooled buffers.
		for i, part := range pool.curvA[s][li] {
			tensor.Put(part)
			pool.curvA[s][li][i] = nil
		}
		for i, part := range pool.curvB[s][li] {
			tensor.Put(part)
			pool.curvB[s][li][i] = nil
		}
	}
	if err := st.e.kfacPre[s].InvertFactor(li, factorB); err != nil {
		return err
	}
	st.recordComm(d, op, t0, bytes)
	return nil
}

// precondition rewrites the stage's gradients with the cached K-FAC
// inverses — the per-step Precondition op, "the only computational
// overhead of PipeFisher" (Figure 1). In a multi-step round each step
// preconditions with the freshest inverses whose inversions the packer
// placed in steps up to its own (the dependency edges enforce it), and
// with the previous refresh's stale inverses for factors still in flight —
// the paper's stale-but-cheap discipline. Only the primary replica's op
// does the work: the collective already reduced the group's gradients into
// the primary's accumulators, which are the only ones the optimizer
// consumes. It first joins the step's gradient collective, which on W = 1
// schedules without SyncGrad ops (gpipe/1f1b) is where the reduction
// lands.
func (st *runState) precondition(d int, op *pipeline.Op) error {
	// t0 is taken before the fold so the recorded event covers the
	// gradient reduction this op anchors on W = 1 schedules, not only the
	// inverse application.
	t0 := time.Since(st.start)
	bytes, err := st.foldStages(op)
	if err != nil {
		return err
	}
	if st.e.kfacPre == nil || op.Replica != 0 {
		return nil
	}
	s := op.Stage
	st.e.stageMu[0][s].Lock()
	defer st.e.stageMu[0][s].Unlock()
	st.e.kfacPre[s].Precondition()
	st.recordComm(d, op, t0, bytes)
	return nil
}

// record appends a measured event for op, ending now.
func (st *runState) record(d int, op *pipeline.Op, t0 time.Duration) {
	st.recordKind(d, op.Kind, op, t0, time.Since(st.start))
}

// recordComm appends a measured event that moved bytes over the collective
// transport (zero on loopback groups and for latecomers to a shared fold —
// the recorded column is bytes THIS op put on the wire).
func (st *runState) recordComm(d int, op *pipeline.Op, t0 time.Duration, bytes int64) {
	st.recordKind(d, op.Kind, op, t0, time.Since(st.start))
	evs := st.events[d]
	evs[len(evs)-1].Bytes = bytes
}

// recordKind appends a measured event, possibly under a different kind
// than the schedule op (Recompute segments of Backward ops).
func (st *runState) recordKind(d int, kind pipeline.WorkKind, op *pipeline.Op, t0, t1 time.Duration) {
	ev := op
	if kind != op.Kind {
		ev = &pipeline.Op{
			Kind: kind, Device: op.Device, Stage: op.Stage, Replica: op.Replica,
			MicroBatch: op.MicroBatch, Factor: op.Factor, Step: op.Step,
		}
	}
	start := hardware.Microseconds(t0.Microseconds())
	end := hardware.Microseconds(t1.Microseconds())
	if end < start {
		end = start
	}
	st.events[d] = append(st.events[d], pipeline.Event{Op: ev, Start: start, End: end})
}

// timeline assembles the executed round's measured timeline — Steps =
// RefreshSteps, with per-step boundaries so traces can draw the round's
// internal step structure — recording the intra-op parallelism the kernels
// ran with so the executed trace can be compared against simulated ones on
// equal terms.
func (st *runState) timeline() *pipeline.Timeline {
	r := len(st.micro)
	tl := &pipeline.Timeline{
		Name:          st.e.sched.Name + " (executed)",
		Devices:       st.e.sched.Devices,
		Steps:         r,
		Events:        st.events,
		StepEnd:       make([]hardware.Microseconds, r),
		Parallelism:   st.e.workers,
		OpParallelism: st.e.opShare,
	}
	for d := range tl.Events {
		for _, ev := range tl.Events[d] {
			if ev.End > tl.Makespan {
				tl.Makespan = ev.End
			}
			if j := ev.Op.Step; j >= 0 && j < r && ev.End > tl.StepEnd[j] {
				tl.StepEnd[j] = ev.End
			}
		}
	}
	for j := 1; j < r; j++ {
		if tl.StepEnd[j] < tl.StepEnd[j-1] {
			tl.StepEnd[j] = tl.StepEnd[j-1]
		}
	}
	// Stamp every event with the elastic membership view it executed under,
	// and mark the first round after a membership change with a
	// zero-duration Membership span at the timeline's origin — the regroup
	// marker trace renderers draw.
	if e := st.e; e.memberView > 0 {
		for d := range tl.Events {
			for i := range tl.Events[d] {
				tl.Events[d][i].Membership = e.memberView
			}
		}
		if e.memberChanged {
			e.memberChanged = false
			mark := pipeline.Event{
				Op:         &pipeline.Op{Kind: pipeline.Membership, Step: 0},
				Membership: e.memberView,
			}
			tl.Events[0] = append([]pipeline.Event{mark}, tl.Events[0]...)
		}
	}
	return tl
}

func mat2(a, b int) [][]*tensor.Matrix {
	out := make([][]*tensor.Matrix, a)
	for i := range out {
		out[i] = make([]*tensor.Matrix, b)
	}
	return out
}

func mat3(a, b, c int) [][][]*tensor.Matrix {
	out := make([][][]*tensor.Matrix, a)
	for i := range out {
		out[i] = mat2(b, c)
	}
	return out
}

func snap3(a, b, c int) [][][]tensor.Snap {
	out := make([][][]tensor.Snap, a)
	for i := range out {
		out[i] = make([][]tensor.Snap, b)
		for j := range out[i] {
			out[i][j] = make([]tensor.Snap, c)
		}
	}
	return out
}

func int3(a, b, c int) [][][]int {
	out := make([][][]int, a)
	for i := range out {
		out[i] = make([][]int, b)
		for j := range out[i] {
			out[i][j] = make([]int, c)
		}
	}
	return out
}
