package engine

import (
	"errors"
	"sync"
	"testing"

	"repro/internal/bert"
	"repro/internal/data"
	"repro/internal/gpt"
	"repro/internal/kfac"
	"repro/internal/nn"
	"repro/internal/pipeline"
	"repro/internal/tensor"
	"repro/internal/transport"
)

// rankResult carries one ring rank's step outputs back to the test body for
// cross-rank and against-reference comparison.
type rankResult struct {
	loss  float64
	grads []*tensor.Matrix
	bytes int64
	tl    *pipeline.Timeline
	err   error
}

// runRingRanks spins up a 2-rank local Unix-socket ring and runs fn once per
// rank, concurrently — engine construction must overlap across ranks because
// the initial parameter broadcast is itself a collective. The rings are
// closed after both ranks return.
func runRingRanks(t *testing.T, chunkFloats int, fn func(rank int, g transport.Group) rankResult) [2]rankResult {
	t.Helper()
	rings, err := transport.NewLocalRing(2, chunkFloats)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, r := range rings {
			r.Close()
		}
	}()
	var out [2]rankResult
	var wg sync.WaitGroup
	for rank := range rings {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			out[rank] = fn(rank, rings[rank])
		}(rank)
	}
	wg.Wait()
	return out
}

// newRankBERT builds a fresh BERT model and batch with the same seeds as
// newModelAndCorpus — every rank of a group must materialize the global batch
// independently, exactly as a separate process would.
func newRankBERT(t *testing.T, batchSize int) (*bert.Model, *data.Batch) {
	t.Helper()
	m, err := bert.New(bert.TinyConfig(), 123)
	if err != nil {
		t.Fatal(err)
	}
	c, err := data.NewCorpus(bert.TinyConfig().VocabSize, 1.0, 321)
	if err != nil {
		t.Fatal(err)
	}
	return m, c.MakeBatch(batchSize, data.DefaultBatchConfig(m.Config.SeqLen))
}

func requireRankGradsBitEqual(t *testing.T, got []*tensor.Matrix, ref []*tensor.Matrix, context string) {
	t.Helper()
	if len(got) != len(ref) {
		t.Fatalf("%s: %d gradients, want %d", context, len(got), len(ref))
	}
	for i := range got {
		if !got[i].Equal(ref[i]) {
			t.Fatalf("%s: gradient %d not bit-identical (max diff %g)",
				context, i, got[i].Sub(ref[i]).MaxAbs())
		}
	}
}

// The tentpole wire-parity property: a 2-process-style ring group (one
// replica per rank, real sockets, chunked chain all-reduce) produces
// gradients and losses bit-identical to the in-process W = 2 loopback run of
// the same global batch, for every schedule. The per-micro fold parts cross
// the wire unreduced, so the reduction's addition chain — ascending global
// micro-batch order — is literally the same sequence of float64 adds.
func TestRingEngineBitIdenticalToLoopback(t *testing.T) {
	for _, method := range []string{"gpipe", "1f1b", "chimera"} {
		// Loopback reference: W = 2 in-process replicas, 4 global micros.
		m, c := newModelAndCorpus(t)
		batch := c.MakeBatch(8, data.DefaultBatchConfig(m.Config.SeqLen))
		params := m.Params()
		eRef, err := NewWithConfig(m, Config{Method: method, Stages: 2, MicroBatches: 2, Replicas: 2})
		if err != nil {
			t.Fatal(err)
		}
		nn.ZeroGrads(params)
		resRef, err := eRef.TrainStep(batch)
		if err != nil {
			t.Fatalf("%s loopback: %v", method, err)
		}
		ref := cloneGrads(params)

		// Ring: 2 ranks x 1 replica x 2 micros = the same 4 global micros.
		// Small chunk size so every fold actually exercises chunking.
		out := runRingRanks(t, 512, func(rank int, g transport.Group) rankResult {
			mr, br := newRankBERT(t, 8)
			er, err := NewWithConfig(mr, Config{Method: method, Stages: 2, MicroBatches: 2, Transport: g})
			if err != nil {
				return rankResult{err: err}
			}
			nn.ZeroGrads(mr.Params())
			res, err := er.TrainStep(br)
			if err != nil {
				return rankResult{err: err}
			}
			return rankResult{loss: res.Loss.Total, grads: cloneGrads(mr.Params()), bytes: g.BytesOnWire(), tl: er.LastTimeline()}
		})
		for rank, r := range out {
			if r.err != nil {
				t.Fatalf("%s rank %d: %v", method, rank, r.err)
			}
			if r.loss != resRef.Loss.Total {
				t.Fatalf("%s rank %d: loss %.17g != loopback %.17g", method, rank, r.loss, resRef.Loss.Total)
			}
			requireRankGradsBitEqual(t, r.grads, ref, method+" ring rank vs loopback")
			if r.bytes == 0 {
				t.Fatalf("%s rank %d: ring transport reports 0 bytes on wire", method, rank)
			}
		}

		// With one local replica the fold lands at the rank's optimizer
		// anchor; the executed timeline must attribute the wire bytes there.
		var wired int64
		for d := 0; d < out[0].tl.Devices; d++ {
			for _, ev := range out[0].tl.Events[d] {
				wired += ev.Bytes
			}
		}
		if wired == 0 {
			t.Fatalf("%s: executed ring timeline attributes no bytes on wire", method)
		}
		if wired > out[0].bytes {
			t.Fatalf("%s: timeline attributes %d wire bytes, more than the transport total %d", method, wired, out[0].bytes)
		}
	}
}

func TestRingEngineBitIdenticalToLoopbackGPT(t *testing.T) {
	newRank := func() (*gpt.Model, *data.Batch) {
		m, err := gpt.New(gpt.TinyConfig(), 99)
		if err != nil {
			t.Fatal(err)
		}
		c, err := data.NewCorpus(gpt.TinyConfig().VocabSize, 1.0, 7)
		if err != nil {
			t.Fatal(err)
		}
		return m, gpt.MakeBatch(c, 8, m.Config.SeqLen)
	}
	for _, method := range []string{"gpipe", "1f1b"} {
		m, batch := newRank()
		params := m.Params()
		eRef, err := NewWithConfig(m, Config{Method: method, Stages: 2, MicroBatches: 2, Replicas: 2})
		if err != nil {
			t.Fatal(err)
		}
		nn.ZeroGrads(params)
		resRef, err := eRef.TrainStep(batch)
		if err != nil {
			t.Fatalf("%s loopback: %v", method, err)
		}
		ref := cloneGrads(params)

		out := runRingRanks(t, transport.DefaultChunkFloats, func(rank int, g transport.Group) rankResult {
			mr, br := newRank()
			er, err := NewWithConfig(mr, Config{Method: method, Stages: 2, MicroBatches: 2, Transport: g})
			if err != nil {
				return rankResult{err: err}
			}
			nn.ZeroGrads(mr.Params())
			res, err := er.TrainStep(br)
			if err != nil {
				return rankResult{err: err}
			}
			return rankResult{loss: res.Loss.Total, grads: cloneGrads(mr.Params())}
		})
		for rank, r := range out {
			if r.err != nil {
				t.Fatalf("%s rank %d: %v", method, rank, r.err)
			}
			if r.loss != resRef.Loss.Total {
				t.Fatalf("%s rank %d: loss %.17g != loopback %.17g", method, rank, r.loss, resRef.Loss.Total)
			}
			requireRankGradsBitEqual(t, r.grads, ref, "gpt "+method+" ring rank vs loopback")
		}
	}
}

// K-FAC factor folds also cross the wire as unreduced per-micro Gram
// partials, so preconditioned gradients stay bit-identical between a ring
// group and the in-process W = 2 run.
func TestRingEngineKFACBitIdentity(t *testing.T) {
	opts := kfac.Options{Damping: 1e-2, StatDecay: 0.9, UsePiDamping: true}

	m, c := newModelAndCorpus(t)
	batch := c.MakeBatch(8, data.DefaultBatchConfig(m.Config.SeqLen))
	params := m.Params()
	eRef, err := NewWithConfig(m, Config{Method: "gpipe", Stages: 2, MicroBatches: 2, Replicas: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := eRef.EnableKFAC(opts, 1); err != nil {
		t.Fatal(err)
	}
	nn.ZeroGrads(params)
	resRef, err := eRef.TrainStep(batch)
	if err != nil {
		t.Fatal(err)
	}
	if !resRef.Refreshed {
		t.Fatal("first K-FAC step must refresh")
	}
	ref := cloneGrads(params)

	out := runRingRanks(t, 256, func(rank int, g transport.Group) rankResult {
		mr, br := newRankBERT(t, 8)
		er, err := NewWithConfig(mr, Config{Method: "gpipe", Stages: 2, MicroBatches: 2, Transport: g})
		if err != nil {
			return rankResult{err: err}
		}
		if err := er.EnableKFAC(opts, 1); err != nil {
			return rankResult{err: err}
		}
		nn.ZeroGrads(mr.Params())
		res, err := er.TrainStep(br)
		if err != nil {
			return rankResult{err: err}
		}
		return rankResult{loss: res.Loss.Total, grads: cloneGrads(mr.Params()), bytes: g.BytesOnWire()}
	})
	for rank, r := range out {
		if r.err != nil {
			t.Fatalf("rank %d: %v", rank, r.err)
		}
		if r.loss != resRef.Loss.Total {
			t.Fatalf("rank %d: loss %.17g != loopback %.17g", rank, r.loss, resRef.Loss.Total)
		}
		requireRankGradsBitEqual(t, r.grads, ref, "kfac ring rank vs loopback")
		if r.bytes == 0 {
			t.Fatalf("rank %d: K-FAC ring run reports 0 bytes on wire", rank)
		}
	}
}

// ZeRO-style parameter sharding changes only residency, not math: a
// ShardParams engine reproduces the plain W = 2 gradients and losses bit for
// bit on every schedule, across multiple steps (the second step exercises
// the resident-only parameter broadcast), while the secondary replica holds
// roughly half the parameter bytes.
func TestShardParamsBitIdentity(t *testing.T) {
	for _, method := range []string{"gpipe", "1f1b", "chimera"} {
		m, c := newModelAndCorpus(t)
		params := m.Params()
		batches := []*data.Batch{
			c.MakeBatch(8, data.DefaultBatchConfig(m.Config.SeqLen)),
			c.MakeBatch(8, data.DefaultBatchConfig(m.Config.SeqLen)),
		}

		ePlain, err := NewWithConfig(m, Config{Method: method, Stages: 2, MicroBatches: 2, Replicas: 2})
		if err != nil {
			t.Fatal(err)
		}
		refLoss := make([]float64, len(batches))
		refGrads := make([][]*tensor.Matrix, len(batches))
		nn.ZeroGrads(params)
		for i, b := range batches {
			res, err := ePlain.TrainStep(b)
			if err != nil {
				t.Fatalf("%s plain step %d: %v", method, i, err)
			}
			refLoss[i] = res.Loss.Total
			refGrads[i] = cloneGrads(params)
		}

		eShard, err := NewWithConfig(m, Config{Method: method, Stages: 2, MicroBatches: 2, Replicas: 2, ShardParams: true})
		if err != nil {
			t.Fatal(err)
		}
		full, resident, ok := eShard.ShardStats()
		if !ok {
			t.Fatalf("%s: ShardStats not available on a ShardParams engine", method)
		}
		if full == 0 || resident == 0 {
			t.Fatalf("%s: degenerate shard stats full=%d resident=%d", method, full, resident)
		}
		if ratio := float64(resident) / float64(full); ratio < 0.25 || ratio > 0.75 {
			t.Fatalf("%s: secondary replica keeps %.0f%% of parameter bytes resident, want ~50%% at W=2", method, 100*ratio)
		}
		nn.ZeroGrads(params)
		for i, b := range batches {
			res, err := eShard.TrainStep(b)
			if err != nil {
				t.Fatalf("%s sharded step %d: %v", method, i, err)
			}
			if res.Loss.Total != refLoss[i] {
				t.Fatalf("%s step %d: sharded loss %.17g != plain %.17g", method, i, res.Loss.Total, refLoss[i])
			}
			requireGradsBitEqual(t, params, refGrads[i], method+" sharded vs plain step")
		}
	}
}

func TestShardParamsBitIdentityGPT(t *testing.T) {
	m, err := gpt.New(gpt.TinyConfig(), 99)
	if err != nil {
		t.Fatal(err)
	}
	c, err := data.NewCorpus(gpt.TinyConfig().VocabSize, 1.0, 7)
	if err != nil {
		t.Fatal(err)
	}
	batch := gpt.MakeBatch(c, 8, m.Config.SeqLen)
	params := m.Params()

	ePlain, err := NewWithConfig(m, Config{Method: "1f1b", Stages: 2, MicroBatches: 2, Replicas: 2})
	if err != nil {
		t.Fatal(err)
	}
	nn.ZeroGrads(params)
	if _, err := ePlain.TrainStep(batch); err != nil {
		t.Fatal(err)
	}
	ref := cloneGrads(params)

	eShard, err := NewWithConfig(m, Config{Method: "1f1b", Stages: 2, MicroBatches: 2, Replicas: 2, ShardParams: true})
	if err != nil {
		t.Fatal(err)
	}
	nn.ZeroGrads(params)
	if _, err := eShard.TrainStep(batch); err != nil {
		t.Fatal(err)
	}
	requireGradsBitEqual(t, params, ref, "gpt sharded vs plain")
}

// Sharding composes with the wire transport: ring ranks running 2 sharded
// local replicas each reproduce the in-process W = 4 reference bit for bit.
func TestShardParamsOverRingBitIdentity(t *testing.T) {
	m, c := newModelAndCorpus(t)
	batch := c.MakeBatch(8, data.DefaultBatchConfig(m.Config.SeqLen))
	params := m.Params()
	eRef, err := NewWithConfig(m, Config{Method: "gpipe", Stages: 2, MicroBatches: 1, Replicas: 4})
	if err != nil {
		t.Fatal(err)
	}
	nn.ZeroGrads(params)
	resRef, err := eRef.TrainStep(batch)
	if err != nil {
		t.Fatal(err)
	}
	ref := cloneGrads(params)

	out := runRingRanks(t, 512, func(rank int, g transport.Group) rankResult {
		mr, br := newRankBERT(t, 8)
		er, err := NewWithConfig(mr, Config{Method: "gpipe", Stages: 2, MicroBatches: 1, Replicas: 2, ShardParams: true, Transport: g})
		if err != nil {
			return rankResult{err: err}
		}
		nn.ZeroGrads(mr.Params())
		res, err := er.TrainStep(br)
		if err != nil {
			return rankResult{err: err}
		}
		return rankResult{loss: res.Loss.Total, grads: cloneGrads(mr.Params())}
	})
	for rank, r := range out {
		if r.err != nil {
			t.Fatalf("rank %d: %v", rank, r.err)
		}
		if r.loss != resRef.Loss.Total {
			t.Fatalf("rank %d: loss %.17g != loopback W=4 %.17g", rank, r.loss, resRef.Loss.Total)
		}
		requireRankGradsBitEqual(t, r.grads, ref, "sharded ring rank vs loopback W=4")
	}
}

// A dropped gradient collective on a ring rank is a base-path failure: the
// round aborts on the injured rank, the transport abort unblocks any peer
// mid-collective, both ranks restore the round checkpoint, and the replay
// reproduces the fault-free loopback reference bit for bit.
func TestRingEngineFaultAbortAndReplay(t *testing.T) {
	// Fault-free reference: in-process W = 4 (2 ranks x 2 local replicas).
	m, c := newModelAndCorpus(t)
	batch := c.MakeBatch(8, data.DefaultBatchConfig(m.Config.SeqLen))
	params := m.Params()
	eRef, err := NewWithConfig(m, Config{Method: "gpipe", Stages: 2, MicroBatches: 1, Replicas: 4})
	if err != nil {
		t.Fatal(err)
	}
	nn.ZeroGrads(params)
	if _, err := eRef.TrainStep(batch); err != nil {
		t.Fatal(err)
	}
	ref := cloneGrads(params)

	out := runRingRanks(t, transport.DefaultChunkFloats, func(rank int, g transport.Group) rankResult {
		mr, br := newRankBERT(t, 8)
		// Two local replicas so sync-grad ops exist for the drop to hit.
		// Every rank runs the identical plan — the symmetry the multi-rank
		// fault contract requires.
		er, err := NewWithConfig(mr, Config{
			Method: "gpipe", Stages: 2, MicroBatches: 1, Replicas: 2,
			Transport: g, Checkpoint: true,
			FaultPlan: mustParsePlan(t, "drop:op=sync-grad,count=1"),
		})
		if err != nil {
			return rankResult{err: err}
		}
		nn.ZeroGrads(mr.Params())
		batches := []*data.Batch{br}
		// Fault-tolerant driver loop: aborts are not rank-symmetric in time
		// (one rank's drop may fire while a peer is elsewhere, and the
		// attributed abort can itself fail an attempt before that peer's own
		// drop was consumed), so each rank retries restore+replay until the
		// round commits. The transport epochs re-align because every attempt
		// advances them in lockstep with the peer's.
		aborts := 0
		for {
			if _, err := er.TrainRound(batches); err == nil {
				break
			}
			aborts++
			if aborts > 8 {
				return rankResult{err: errors.New("round would not commit after 8 replays")}
			}
			if _, err := er.RestoreCheckpoint(); err != nil {
				return rankResult{err: err}
			}
		}
		if aborts == 0 {
			return rankResult{err: errors.New("dropped collective committed anyway")}
		}
		return rankResult{grads: cloneGrads(mr.Params())}
	})
	for rank, r := range out {
		if r.err != nil {
			t.Fatalf("rank %d: %v", rank, r.err)
		}
		requireRankGradsBitEqual(t, r.grads, ref, "post-replay ring rank vs fault-free loopback")
	}
}
