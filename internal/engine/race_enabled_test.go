//go:build race

package engine

// raceEnabled reports that the race detector is active: sync.Pool
// deliberately drops items under race instrumentation, so pooled-path
// zero-allocation assertions are skipped.
const raceEnabled = true
