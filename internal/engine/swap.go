package engine

import (
	"fmt"

	"repro/internal/pipeline"
)

// SwapConfig selects the schedule shape a round-boundary hot-swap
// (Reconfigure) moves the engine to. It covers exactly the dimensions of
// the auto-tuner's candidate space — the knobs that change how work packs
// into bubbles without changing what the work computes. Zero-valued fields
// keep the current setting where a zero is not meaningful (Method "",
// RefreshSteps 0, RefreshEvery 0); the booleans are absolute.
type SwapConfig struct {
	// Method is the schedule family to swap to ("" keeps the current one).
	// The stage count, micro-batch count and replica width are fixed at
	// construction — a chimera target is only valid when the current
	// stages/micro-batches satisfy its evenness constraints.
	Method string
	// RefreshSteps is the new round length K (0 keeps the current one;
	// AdaptiveRefreshSteps is not valid here — the tuner measures, it does
	// not re-derive from modeled costs). Callers must re-query RoundSteps
	// after a successful swap: TrainRound consumes K batches.
	RefreshSteps int
	// Overlap and InversionParallel set the corresponding Config fields
	// absolutely (swapping TO overlap and AWAY from it are both swaps).
	Overlap           bool
	InversionParallel bool
	// CarryDepth is the overlap carry depth (0 = the schedule default of
	// 2). Only meaningful with Overlap.
	CarryDepth int
	// RefreshEvery is the new refresh cadence in steps. 0 keeps the
	// current cadence, rounded UP to the nearest multiple of the new K
	// when the round length changes (a refresh window cannot straddle a
	// round boundary).
	RefreshEvery int
	// Costs, when non-nil, replaces the engine's packing cost model with a
	// fitted one (see SetCostModel) for the rebuild. Execution follows the
	// packed order only, so this never changes the math.
	Costs *pipeline.StageCosts
}

// Reconfigure hot-swaps the engine's executable schedule at a round
// boundary: call it between TrainRound calls (rounds are atomic — there are
// no live device goroutines between rounds, so the swap needs no
// synchronization). Parameters, gradient accumulators, attached optimizer
// state, the per-stage K-FAC preconditioners and the step/round counters
// all survive the swap — it is as safe as a restart without the teardown.
//
// A swap to the *identical* configuration is a no-op by construction (the
// rebuilt schedule is deterministic and equal, and no refresh state is
// touched): training after it is bit-identical to never swapping. A swap
// that changes the schedule shape discards in-flight refresh state — the
// statistics pools and any pending carried generations belong to the old
// schedule's carry structure — and forces a full refresh on the next round,
// so the engine never serves factors collected under one schedule through
// the carry discipline of another.
//
// On error the engine is unchanged (the old schedule keeps running).
func (e *Engine) Reconfigure(sc SwapConfig) error {
	nc := e.cfg
	if sc.Method != "" {
		nc.Method = sc.Method
	}
	k := e.roundLen
	if sc.RefreshSteps != 0 {
		if sc.RefreshSteps < 0 {
			return fmt.Errorf("engine: Reconfigure RefreshSteps must be positive, got %d", sc.RefreshSteps)
		}
		k = sc.RefreshSteps
	}
	if sc.RefreshEvery < 0 {
		return fmt.Errorf("engine: Reconfigure RefreshEvery must be non-negative, got %d", sc.RefreshEvery)
	}
	nc.RefreshSteps = k
	nc.OverlapRounds = sc.Overlap
	nc.InversionParallel = sc.InversionParallel
	nc.CarryDepth = 0
	if sc.Overlap {
		// Overlap spreads the refresh by construction; a front-loaded
		// engine swapping to overlap drops the front-load pinning.
		nc.FrontLoadRefresh = false
		nc.CarryDepth = sc.CarryDepth
	} else if sc.CarryDepth > 1 {
		return fmt.Errorf("engine: Reconfigure CarryDepth %d needs Overlap", sc.CarryDepth)
	}
	nc, err := nc.normalize()
	if err != nil {
		return err
	}
	re := e.refreshEvery
	if sc.RefreshEvery > 0 {
		re = sc.RefreshEvery
	}
	if e.kfacPre != nil {
		if re <= 0 {
			re = k
		}
		if re%k != 0 {
			re = (re/k + 1) * k
		}
	}
	same := nc.Method == e.cfg.Method &&
		k == e.roundLen &&
		nc.OverlapRounds == e.cfg.OverlapRounds &&
		nc.InversionParallel == e.cfg.InversionParallel &&
		nc.FrontLoadRefresh == e.cfg.FrontLoadRefresh &&
		effectiveCarryDepth(nc) == effectiveCarryDepth(e.cfg) &&
		re == e.refreshEvery &&
		(sc.Costs == nil || (e.costModel != nil && costsEqual(*sc.Costs, *e.costModel)))

	oldCfg, oldLen, oldCosts := e.cfg, e.roundLen, e.costModel
	e.cfg = nc
	e.roundLen = k
	if sc.Costs != nil {
		c := *sc.Costs
		e.costModel = &c
	}
	if err := e.rebuildSchedule(); err != nil {
		e.cfg, e.roundLen, e.costModel = oldCfg, oldLen, oldCosts
		return fmt.Errorf("engine: Reconfigure: %w", err)
	}
	if e.kfacPre == nil {
		return nil
	}
	e.refreshEvery = re
	e.maxCarryGen = maxScheduleGen(e.sched)
	if same {
		// Identical shape: the rebuilt schedule is equal op for op, and the
		// refresh pipeline (pools, carry queue, cadence counters) continues
		// untouched — the bit-identity guarantee of a no-op swap.
		return nil
	}
	for _, p := range e.kfacPools {
		if p != nil {
			p.reset()
		}
	}
	e.ensureGenPools()
	e.carryQ = make([]*kfacGenPool, e.maxCarryGen)
	e.refreshPending = true
	return nil
}

// effectiveCarryDepth resolves the CarryDepth default (0 means 2 under
// overlap, no carry otherwise) for shape comparison.
func effectiveCarryDepth(c Config) int {
	if !c.OverlapRounds {
		return 0
	}
	if c.CarryDepth == 0 {
		return 2
	}
	return c.CarryDepth
}

// SetCostModel replaces the static packing cost shape (execCosts) with a
// fitted one and rebuilds the executable schedule against it. Passing nil
// restores the static shape. Like Reconfigure, call it only between rounds;
// unlike Reconfigure it preserves the refresh pipeline only when the
// repacked schedule's carry structure is unchanged — the auto-tuner
// therefore always swaps costs through Reconfigure, which settles that
// question explicitly.
func (e *Engine) SetCostModel(c *pipeline.StageCosts) error {
	old := e.costModel
	if c != nil {
		cc := *c
		e.costModel = &cc
	} else {
		e.costModel = nil
	}
	if err := e.rebuildSchedule(); err != nil {
		e.costModel = old
		return err
	}
	if e.kfacPre != nil {
		oldMax := e.maxCarryGen
		e.maxCarryGen = maxScheduleGen(e.sched)
		if e.maxCarryGen != oldMax || e.carryPending() {
			for _, p := range e.kfacPools {
				if p != nil {
					p.reset()
				}
			}
			e.ensureGenPools()
			e.carryQ = make([]*kfacGenPool, e.maxCarryGen)
			e.refreshPending = true
		}
	}
	return nil
}

// ModeledCosts returns the cost shape the engine currently packs schedules
// with: the fitted model when one is installed, the static execCosts shape
// otherwise.
func (e *Engine) ModeledCosts() pipeline.StageCosts { return e.execCosts() }

// Overlapped reports whether the engine runs overlapped refresh rounds.
func (e *Engine) Overlapped() bool { return e.cfg.OverlapRounds }

// InversionParallel reports whether inversion units shard across each
// stage's device group.
func (e *Engine) InversionParallel() bool { return e.cfg.InversionParallel }

// MicroBatches returns the number of micro-batches per replica per step.
func (e *Engine) MicroBatches() int { return e.cfg.MicroBatches }

// RefreshEvery returns the refresh cadence in steps (0 before EnableKFAC).
func (e *Engine) RefreshEvery() int { return e.refreshEvery }

// CarryDepth returns the effective overlap carry depth (0 when not
// overlapped, the resolved default of 2 when overlapped without an explicit
// depth).
func (e *Engine) CarryDepth() int { return effectiveCarryDepth(e.cfg) }

// costsEqual compares two StageCosts value-wise.
func costsEqual(a, b pipeline.StageCosts) bool {
	if a.Forward != b.Forward || a.Backward != b.Backward ||
		a.Precondition != b.Precondition || a.OptStep != b.OptStep ||
		a.SyncGrad != b.SyncGrad || a.SyncCurvature != b.SyncCurvature ||
		a.CurvaturePerMicroBatch != b.CurvaturePerMicroBatch {
		return false
	}
	if len(a.CurvatureUnits) != len(b.CurvatureUnits) || len(a.InversionUnits) != len(b.InversionUnits) {
		return false
	}
	for i := range a.CurvatureUnits {
		if a.CurvatureUnits[i] != b.CurvatureUnits[i] {
			return false
		}
	}
	for i := range a.InversionUnits {
		if a.InversionUnits[i] != b.InversionUnits[i] {
			return false
		}
	}
	return true
}
