package engine

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/data"
	"repro/internal/gpt"
	"repro/internal/kfac"
	"repro/internal/nn"
	"repro/internal/optim"
	"repro/internal/pipeline"
	"repro/internal/tensor"
	"repro/internal/transport"
)

// requireGradsBitEqual asserts exact (bit-level) gradient equality — the
// guarantee of the fixed-order micro-batch collective, strictly stronger
// than the 1e-9 closeness the single-device comparisons use.
func requireGradsBitEqual(t *testing.T, params []*nn.Param, ref []*tensor.Matrix, context string) {
	t.Helper()
	for i, p := range params {
		if !p.Grad.Equal(ref[i]) {
			t.Fatalf("%s: gradient of %s not bit-identical (max diff %g)",
				context, p.Name, p.Grad.Sub(ref[i]).MaxAbs())
		}
	}
}

// The tentpole correctness property: a W = 2 data-parallel run over the
// same global batch produces gradients *bit-identical* to the W = 1 run —
// the reduction happens at micro-batch granularity in a fixed ascending
// order, so neither the replica sharding nor the schedule's backward order
// can perturb a single bit. Covers all three schedules for both model
// families.
func TestDataParallelBitIdentityBERT(t *testing.T) {
	m, c := newModelAndCorpus(t)
	batch := c.MakeBatch(8, data.DefaultBatchConfig(m.Config.SeqLen))
	params := m.Params()

	for _, method := range []string{"gpipe", "1f1b", "chimera"} {
		// W = 1 reference: 4 global micro-batches on one replica.
		e1, err := NewWithConfig(m, Config{Method: method, Stages: 2, MicroBatches: 4})
		if err != nil {
			t.Fatal(err)
		}
		nn.ZeroGrads(params)
		res1, err := e1.TrainStep(batch)
		if err != nil {
			t.Fatalf("%s W=1: %v", method, err)
		}
		ref := cloneGrads(params)

		// W = 2: the same 4 global micro-batches, 2 per replica.
		e2, err := NewWithConfig(m, Config{Method: method, Stages: 2, MicroBatches: 2, Replicas: 2})
		if err != nil {
			t.Fatal(err)
		}
		if e2.Schedule().Devices != 4 {
			t.Fatalf("%s: W=2 schedule must span 4 devices, got %d", method, e2.Schedule().Devices)
		}
		nn.ZeroGrads(params)
		res2, err := e2.TrainStep(batch)
		if err != nil {
			t.Fatalf("%s W=2: %v", method, err)
		}
		if res1.Loss.Total != res2.Loss.Total {
			t.Fatalf("%s: W=2 loss %.17g != W=1 loss %.17g", method, res2.Loss.Total, res1.Loss.Total)
		}
		requireGradsBitEqual(t, params, ref, method+" W=2 vs W=1")

		// The executed timeline shows the replica topology: sync-grad
		// collectives on every device, replicas on their own lanes.
		tl := e2.LastTimeline()
		if got := len(tl.EventsOfKind(pipeline.SyncGrad)); got != 4 {
			t.Fatalf("%s: executed W=2 timeline has %d sync-grad events, want 4", method, got)
		}
		var sawReplica1 bool
		for d := 0; d < tl.Devices; d++ {
			for _, ev := range tl.Events[d] {
				if ev.Op.Replica == 1 {
					sawReplica1 = true
				}
			}
		}
		if !sawReplica1 {
			t.Fatalf("%s: executed W=2 timeline records no replica-1 events", method)
		}
	}
}

func TestDataParallelBitIdentityGPT(t *testing.T) {
	m, err := gpt.New(gpt.TinyConfig(), 99)
	if err != nil {
		t.Fatal(err)
	}
	c, err := data.NewCorpus(gpt.TinyConfig().VocabSize, 1.0, 7)
	if err != nil {
		t.Fatal(err)
	}
	batch := gpt.MakeBatch(c, 8, m.Config.SeqLen)
	params := m.Params()

	for _, method := range []string{"gpipe", "1f1b", "chimera"} {
		e1, err := NewWithConfig(m, Config{Method: method, Stages: 2, MicroBatches: 4})
		if err != nil {
			t.Fatal(err)
		}
		nn.ZeroGrads(params)
		if _, err := e1.TrainStep(batch); err != nil {
			t.Fatalf("%s W=1: %v", method, err)
		}
		ref := cloneGrads(params)

		e2, err := NewWithConfig(m, Config{Method: method, Stages: 2, MicroBatches: 2, Replicas: 2})
		if err != nil {
			t.Fatal(err)
		}
		nn.ZeroGrads(params)
		if _, err := e2.TrainStep(batch); err != nil {
			t.Fatalf("%s W=2: %v", method, err)
		}
		requireGradsBitEqual(t, params, ref, "gpt "+method+" W=2 vs W=1")
	}
}

// The fixed reduction order is schedule-independent, so the bit-identity
// guarantee also upgrades the cross-schedule property: GPipe, 1F1B and
// Chimera now agree on every bit, not just to 1e-9.
func TestCrossScheduleBitIdentity(t *testing.T) {
	m, c := newModelAndCorpus(t)
	batch := c.MakeBatch(8, data.DefaultBatchConfig(m.Config.SeqLen))
	params := m.Params()

	var ref []*tensor.Matrix
	for _, method := range []string{"gpipe", "1f1b", "chimera"} {
		e, err := NewWithConfig(m, Config{Method: method, Stages: 2, MicroBatches: 4})
		if err != nil {
			t.Fatal(err)
		}
		nn.ZeroGrads(params)
		if _, err := e.TrainStep(batch); err != nil {
			t.Fatalf("%s: %v", method, err)
		}
		if ref == nil {
			ref = cloneGrads(params)
			continue
		}
		requireGradsBitEqual(t, params, ref, method+" vs gpipe")
	}
}

// Distributed K-FAC: with W = 2 and InversionParallel the curvature
// partials of both replicas fold into the shared per-stage factors in the
// same fixed order as W = 1, so preconditioned gradients stay
// bit-identical; the inversion units measurably shard across the replica
// group; and the SyncGrad/SyncCurvature collectives appear in the
// executed timeline.
func TestDataParallelKFACBitIdentityAndSharding(t *testing.T) {
	m, c := newModelAndCorpus(t)
	batch := c.MakeBatch(8, data.DefaultBatchConfig(m.Config.SeqLen))
	params := m.Params()
	opts := kfac.Options{Damping: 1e-2, StatDecay: 0.9, UsePiDamping: true}

	e1, err := NewWithConfig(m, Config{Method: "gpipe", Stages: 2, MicroBatches: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := e1.EnableKFAC(opts, 1); err != nil {
		t.Fatal(err)
	}
	nn.ZeroGrads(params)
	if _, err := e1.TrainStep(batch); err != nil {
		t.Fatal(err)
	}
	ref := cloneGrads(params)

	e2, err := NewWithConfig(m, Config{Method: "gpipe", Stages: 2, MicroBatches: 2, Replicas: 2, InversionParallel: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := e2.EnableKFAC(opts, 1); err != nil {
		t.Fatal(err)
	}
	nn.ZeroGrads(params)
	res, err := e2.TrainStep(batch)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Refreshed {
		t.Fatal("first K-FAC step must refresh")
	}
	requireGradsBitEqual(t, params, ref, "kfac W=2 vs W=1")
	for s := 0; s < e2.Stages(); s++ {
		for _, ls := range e2.KFACStates(s).States() {
			if ls.CurvatureUpdates != 1 {
				t.Fatalf("stage %d layer %q: %d curvature updates, want 1 (fold-once across replicas)",
					s, ls.Layer.Name, ls.CurvatureUpdates)
			}
			if !ls.HasInverses() {
				t.Fatalf("stage %d layer %q: missing inverses", s, ls.Layer.Name)
			}
		}
	}

	// Collectives in the executed timeline.
	tl := e2.LastTimeline()
	if len(tl.EventsOfKind(pipeline.SyncGrad)) == 0 {
		t.Fatal("executed timeline missing sync-grad events")
	}
	if len(tl.EventsOfKind(pipeline.SyncCurvature)) == 0 {
		t.Fatal("executed timeline missing sync-curvature events")
	}

	// Inversion work shards across the replica group: for each stage,
	// both replica devices execute a strict subset of the factors.
	nFactors := 2 * len(e2.StageLayers(0))
	for s := 0; s < e2.Stages(); s++ {
		perDevice := map[int]int{}
		total := 0
		for d := 0; d < tl.Devices; d++ {
			for _, ev := range tl.Events[d] {
				if ev.Op.Kind == pipeline.Inversion && ev.Op.Stage == s {
					perDevice[d]++
					total++
				}
			}
		}
		if total != nFactors {
			t.Fatalf("stage %d executed %d inversion events, want %d (one per factor)", s, total, nFactors)
		}
		if len(perDevice) != 2 {
			t.Fatalf("stage %d inversions ran on %d devices, want the 2 replica devices", s, len(perDevice))
		}
		for d, cnt := range perDevice {
			if cnt == 0 || cnt == nFactors {
				t.Fatalf("stage %d device %d inverted %d/%d factors: work not sharded", s, d, cnt, nFactors)
			}
		}
	}
}

// The W = 2 data-parallel engine also trains: losses decrease over a short
// LAMB run (the replicated-parameter broadcast and the reduction compose
// with a real optimizer loop).
func TestDataParallelTrainingConverges(t *testing.T) {
	m, c := newModelAndCorpus(t)
	e, err := NewWithConfig(m, Config{Method: "1f1b", Stages: 2, MicroBatches: 2, Replicas: 2})
	if err != nil {
		t.Fatal(err)
	}
	params := m.Params()
	opt := optim.NewLAMB(params, 0.01)
	var first, last float64
	const steps = 30
	for step := 0; step < steps; step++ {
		batch := c.MakeBatch(8, data.DefaultBatchConfig(m.Config.SeqLen))
		nn.ZeroGrads(params)
		res, err := e.TrainStep(batch)
		if err != nil {
			t.Fatal(err)
		}
		opt.Step(5e-3)
		if step < 5 {
			first += res.Loss.Total / 5
		}
		if step >= steps-5 {
			last += res.Loss.Total / 5
		}
	}
	if last >= first-0.1 || math.IsNaN(last) {
		t.Fatalf("data-parallel training did not converge: %.3f -> %.3f", first, last)
	}
}

// Replicas must be validated, and the batch must cover the whole replica
// group.
func TestDataParallelValidation(t *testing.T) {
	m, c := newModelAndCorpus(t)
	if _, err := NewWithConfig(m, Config{Stages: 2, MicroBatches: 2, Replicas: -1}); err == nil {
		t.Fatal("negative Replicas must be rejected")
	}
	e, err := NewWithConfig(m, Config{Stages: 2, MicroBatches: 2, Replicas: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Batch size 4 is divisible by MicroBatches but not by
	// Replicas*MicroBatches.
	batch := c.MakeBatch(6, data.DefaultBatchConfig(m.Config.SeqLen))
	if _, err := e.TrainStep(batch); err == nil {
		t.Fatal("batch not divisible by the replica group's micro-batches must be rejected")
	}
}

// The engine stays reusable after an aborted data-parallel step: the
// collective state rolls back and the next step reproduces the reference
// gradients (the W > 1 analogue of the error-path drain test).
func TestDataParallelErrorPathRollsBack(t *testing.T) {
	m, c := newModelAndCorpus(t)
	params := m.Params()
	batch := c.MakeBatch(8, data.DefaultBatchConfig(m.Config.SeqLen))

	ref, err := NewWithConfig(m, Config{Stages: 2, MicroBatches: 2, Replicas: 2})
	if err != nil {
		t.Fatal(err)
	}
	nn.ZeroGrads(params)
	if _, err := ref.TrainStep(batch); err != nil {
		t.Fatal(err)
	}
	refGrads := cloneGrads(params)

	e, err := NewWithConfig(m, Config{Stages: 2, MicroBatches: 2, Replicas: 2})
	if err != nil {
		t.Fatal(err)
	}
	injected := false
	e.failOp = func(op *pipeline.Op) error {
		if op.Kind == pipeline.Backward && op.Replica == 1 && op.MicroBatch == 1 {
			injected = true
			return fmt.Errorf("injected fault")
		}
		return nil
	}
	nn.ZeroGrads(params)
	if _, err := e.TrainStep(batch); err == nil {
		t.Fatal("expected injected fault to surface")
	}
	if !injected {
		t.Fatal("fault hook never fired")
	}
	e.failOp = nil
	nn.ZeroGrads(params)
	if _, err := e.TrainStep(batch); err != nil {
		t.Fatalf("engine unusable after aborted step: %v", err)
	}
	requireGradsBitEqual(t, params, refGrads, "post-failure data-parallel step")

	// Accumulate-semantics rollback: the pre-step gradient state (here the
	// previous step's accumulation, not zeroed) survives an abort
	// bit-exactly — including stages whose gradient collective already
	// committed before the failure (stage 1's OptStep runs after its
	// stage's fold, so failing there catches a half-folded step).
	e.failOp = func(op *pipeline.Op) error {
		if op.Kind == pipeline.OptStep && op.Stage == 1 && op.Replica == 0 {
			return fmt.Errorf("late injected fault")
		}
		return nil
	}
	if _, err := e.TrainStep(batch); err == nil {
		t.Fatal("expected late injected fault to surface")
	}
	requireGradsBitEqual(t, params, refGrads, "rollback of a half-folded step")
}

// The steady-state all-reduce path allocates nothing: carried and delta
// buffers cycle through the tensor workspace pool, and the fixed-order
// fold works in place.
func TestReduceGradsZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation makes sync.Pool drop items, so the pooled path allocates")
	}
	params := []*nn.Param{
		{Name: "w", Value: tensor.Zeros(8, 8), Grad: tensor.Zeros(8, 8)},
		{Name: "b", Value: tensor.Zeros(1, 8), Grad: tensor.Zeros(1, 8)},
	}
	const micros = 4
	carried := make([]*tensor.Matrix, len(params))
	deltas := make([][]*tensor.Matrix, micros)
	for m := range deltas {
		deltas[m] = make([]*tensor.Matrix, len(params))
	}
	// The preallocated scratch and names mirror what initCollectives hands
	// the executor: the loopback fold must stay zero-alloc with them.
	group := transport.Loopback{}
	names := []string{"g/0/0", "g/0/1"}
	scratch := make([][]float64, micros)
	fill := func() {
		for k, p := range params {
			carried[k] = tensor.GetClone(p.Grad)
			for m := 0; m < micros; m++ {
				deltas[m][k] = tensor.GetClone(p.Value)
			}
		}
	}
	// release returns the carried rollback buffers to the pool, as
	// runStep does once a step commits.
	release := func() {
		for k, c := range carried {
			tensor.Put(c)
			carried[k] = nil
		}
	}
	// Warm the pool.
	fill()
	if _, err := foldParams(group, names, scratch, params, carried, deltas); err != nil {
		t.Fatal(err)
	}
	release()
	allocs := testing.AllocsPerRun(50, func() {
		fill()
		if _, err := foldParams(group, names, scratch, params, carried, deltas); err != nil {
			t.Fatal(err)
		}
		release()
	})
	if allocs > 0 {
		t.Fatalf("steady-state all-reduce path allocates %.1f times per run, want 0", allocs)
	}
}
