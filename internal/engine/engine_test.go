package engine

import (
	"math"
	"testing"

	"repro/internal/bert"
	"repro/internal/data"
	"repro/internal/kfac"
	"repro/internal/nn"
	"repro/internal/optim"
	"repro/internal/tensor"
)

func newModelAndCorpus(t *testing.T) (*bert.Model, *data.Corpus) {
	t.Helper()
	m, err := bert.New(bert.TinyConfig(), 123)
	if err != nil {
		t.Fatal(err)
	}
	c, err := data.NewCorpus(bert.TinyConfig().VocabSize, 1.0, 321)
	if err != nil {
		t.Fatal(err)
	}
	return m, c
}

func TestNewValidation(t *testing.T) {
	m, _ := newModelAndCorpus(t)
	if _, err := New(m, 0, 2); err == nil {
		t.Fatal("expected error for zero stages")
	}
	if _, err := New(m, 2, 0); err == nil {
		t.Fatal("expected error for zero micro-batches")
	}
	// TinyConfig has 2 blocks: 3 stages cannot divide them.
	if _, err := New(m, 3, 2); err == nil {
		t.Fatal("expected error for indivisible blocks")
	}
}

func TestTrainStepBatchValidation(t *testing.T) {
	m, c := newModelAndCorpus(t)
	e, err := New(m, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Batch size 6 not divisible by 4 micro-batches.
	batch := c.MakeBatch(6, data.DefaultBatchConfig(m.Config.SeqLen))
	if _, err := e.TrainStep(batch); err == nil {
		t.Fatal("expected error for indivisible batch")
	}
	wrong := c.MakeBatch(4, data.DefaultBatchConfig(8))
	if _, err := e.TrainStep(wrong); err == nil {
		t.Fatal("expected error for wrong sequence length")
	}
}

// The headline correctness property: a pipelined, micro-batched,
// recomputation-based GPipe step produces the same loss and the same
// parameter gradients as a single-device full-batch step.
func TestPipelineMatchesSingleDevice(t *testing.T) {
	m, c := newModelAndCorpus(t)
	batch := c.MakeBatch(8, data.DefaultBatchConfig(m.Config.SeqLen))
	params := m.Params()

	// Single-device reference.
	nn.ZeroGrads(params)
	refLoss, err := m.Step(batch)
	if err != nil {
		t.Fatal(err)
	}
	refGrads := make([]*tensor.Matrix, len(params))
	for i, p := range params {
		refGrads[i] = p.Grad.Clone()
	}

	// Pipelined execution: 2 stages, 4 micro-batches of 2 sequences.
	e, err := New(m, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	nn.ZeroGrads(params)
	res, err := e.TrainStep(batch)
	if err != nil {
		t.Fatal(err)
	}

	if math.Abs(res.Loss.Total-refLoss.Total) > 1e-9 {
		t.Fatalf("pipelined loss %.12f != single-device %.12f", res.Loss.Total, refLoss.Total)
	}
	if math.Abs(res.Loss.MLM-refLoss.MLM) > 1e-9 || math.Abs(res.Loss.NSP-refLoss.NSP) > 1e-9 {
		t.Fatalf("loss breakdown differs: %+v vs %+v", res.Loss, refLoss)
	}
	if res.Loss.MaskedCount != refLoss.MaskedCount {
		t.Fatalf("masked count %d != %d", res.Loss.MaskedCount, refLoss.MaskedCount)
	}
	for i, p := range params {
		if !p.Grad.AllClose(refGrads[i], 1e-9) {
			t.Fatalf("gradient mismatch for %s (max diff %g)",
				p.Name, p.Grad.Sub(refGrads[i]).MaxAbs())
		}
	}
}

func TestPipelineMatchesAcrossMicroBatchCounts(t *testing.T) {
	// Gradients must be invariant to the micro-batch count (1, 2, 4).
	m, c := newModelAndCorpus(t)
	batch := c.MakeBatch(8, data.DefaultBatchConfig(m.Config.SeqLen))
	params := m.Params()
	var ref []*tensor.Matrix
	for _, micro := range []int{1, 2, 4} {
		e, err := New(m, 2, micro)
		if err != nil {
			t.Fatal(err)
		}
		nn.ZeroGrads(params)
		if _, err := e.TrainStep(batch); err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = make([]*tensor.Matrix, len(params))
			for i, p := range params {
				ref[i] = p.Grad.Clone()
			}
			continue
		}
		for i, p := range params {
			if !p.Grad.AllClose(ref[i], 1e-9) {
				t.Fatalf("micro=%d: gradient differs for %s", micro, p.Name)
			}
		}
	}
}

func TestStageBusyReported(t *testing.T) {
	m, c := newModelAndCorpus(t)
	e, err := New(m, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	batch := c.MakeBatch(4, data.DefaultBatchConfig(m.Config.SeqLen))
	nn.ZeroGrads(m.Params())
	res, err := e.TrainStep(batch)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.StageBusy) != 2 {
		t.Fatalf("expected 2 stage busy entries, got %d", len(res.StageBusy))
	}
	for s, busy := range res.StageBusy {
		if busy <= 0 {
			t.Fatalf("stage %d reported no busy time", s)
		}
	}
}

func TestEngineTrainingConverges(t *testing.T) {
	// End-to-end: pipeline-parallel training with LAMB reduces the loss.
	m, c := newModelAndCorpus(t)
	e, err := New(m, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	params := m.Params()
	opt := optim.NewLAMB(params, 0.01)
	sched := optim.PolyDecaySchedule{BaseLR: 5e-3, WarmupSteps: 5, TotalSteps: 40, Power: 0.5}
	var first, last float64
	const steps = 40
	for step := 0; step < steps; step++ {
		batch := c.MakeBatch(8, data.DefaultBatchConfig(m.Config.SeqLen))
		nn.ZeroGrads(params)
		res, err := e.TrainStep(batch)
		if err != nil {
			t.Fatal(err)
		}
		opt.Step(sched.LR(step))
		if step < 5 {
			first += res.Loss.Total / 5
		}
		if step >= steps-5 {
			last += res.Loss.Total / 5
		}
	}
	if last >= first-0.2 {
		t.Fatalf("pipelined training did not converge: %.3f -> %.3f", first, last)
	}
}

func TestEngineKFAC(t *testing.T) {
	m, c := newModelAndCorpus(t)
	e, err := New(m, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if e.KFACPrecondition() != 0 {
		t.Fatal("preconditioning before EnableKFAC must be a no-op")
	}
	if err := e.KFACRefresh(1); err == nil {
		t.Fatal("expected error refreshing before EnableKFAC")
	}
	e.EnableKFAC(kfac.Options{Damping: 1e-2, StatDecay: 0.9, UsePiDamping: true})

	params := m.Params()
	batch := c.MakeBatch(8, data.DefaultBatchConfig(m.Config.SeqLen))
	nn.ZeroGrads(params)
	res, err := e.TrainStep(batch)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.KFACRefresh(float64(res.Loss.MaskedCount)); err != nil {
		t.Fatal(err)
	}
	// Each stage has 1 block = 6 K-FAC layers; both stages precondition.
	if got := e.KFACPrecondition(); got != 12 {
		t.Fatalf("preconditioned %d layers, want 12", got)
	}
	for _, p := range params {
		if p.Grad.HasNaN() {
			t.Fatalf("NaN gradient in %s after K-FAC preconditioning", p.Name)
		}
	}
}

func TestEngineKFACTrainingConverges(t *testing.T) {
	// Full PipeFisher-style loop through the engine: pipelined step,
	// per-stage curvature/inversion refresh every 2 steps, precondition
	// every step, LAMB update.
	m, c := newModelAndCorpus(t)
	e, err := New(m, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	e.EnableKFAC(kfac.Options{Damping: 1e-2, StatDecay: 0.95, UsePiDamping: true})
	params := m.Params()
	opt := optim.NewLAMB(params, 0.01)
	sched := optim.PolyDecaySchedule{BaseLR: 5e-3, WarmupSteps: 3, TotalSteps: 30, Power: 0.5}
	var first, last float64
	const steps = 30
	for step := 0; step < steps; step++ {
		batch := c.MakeBatch(8, data.DefaultBatchConfig(m.Config.SeqLen))
		nn.ZeroGrads(params)
		res, err := e.TrainStep(batch)
		if err != nil {
			t.Fatal(err)
		}
		if step%2 == 0 {
			if err := e.KFACRefresh(float64(res.Loss.MaskedCount + 8)); err != nil {
				t.Fatal(err)
			}
		}
		e.KFACPrecondition()
		opt.Step(sched.LR(step))
		if step < 5 {
			first += res.Loss.Total / 5
		}
		if step >= steps-5 {
			last += res.Loss.Total / 5
		}
	}
	if last >= first-0.1 {
		t.Fatalf("PipeFisher-style training did not converge: %.3f -> %.3f", first, last)
	}
}

func TestStageLayers(t *testing.T) {
	m, _ := newModelAndCorpus(t)
	e, err := New(m, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(e.StageLayers(0)); got != 6 {
		t.Fatalf("stage 0 has %d K-FAC layers, want 6", got)
	}
	if got := len(e.StageLayers(1)); got != 6 {
		t.Fatalf("stage 1 has %d K-FAC layers, want 6", got)
	}
	// Stages own disjoint layers.
	seen := map[*nn.Dense]bool{}
	for s := 0; s < e.Stages(); s++ {
		for _, l := range e.StageLayers(s) {
			if seen[l] {
				t.Fatal("stages share a layer")
			}
			seen[l] = true
		}
	}
}
