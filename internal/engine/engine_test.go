package engine

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"repro/internal/bert"
	"repro/internal/data"
	"repro/internal/gpt"
	"repro/internal/kfac"
	"repro/internal/nn"
	"repro/internal/optim"
	"repro/internal/pipeline"
	"repro/internal/tensor"
)

func newModelAndCorpus(t *testing.T) (*bert.Model, *data.Corpus) {
	t.Helper()
	m, err := bert.New(bert.TinyConfig(), 123)
	if err != nil {
		t.Fatal(err)
	}
	c, err := data.NewCorpus(bert.TinyConfig().VocabSize, 1.0, 321)
	if err != nil {
		t.Fatal(err)
	}
	return m, c
}

func cloneGrads(params []*nn.Param) []*tensor.Matrix {
	out := make([]*tensor.Matrix, len(params))
	for i, p := range params {
		out[i] = p.Grad.Clone()
	}
	return out
}

func requireGradsClose(t *testing.T, params []*nn.Param, ref []*tensor.Matrix, context string) {
	t.Helper()
	for i, p := range params {
		if !p.Grad.AllClose(ref[i], 1e-9) {
			t.Fatalf("%s: gradient mismatch for %s (max diff %g)",
				context, p.Name, p.Grad.Sub(ref[i]).MaxAbs())
		}
	}
}

func TestNewValidation(t *testing.T) {
	m, _ := newModelAndCorpus(t)
	cases := []struct {
		name string
		cfg  Config
		want string
	}{
		{"zero stages", Config{Stages: 0, MicroBatches: 2}, "Stages must be positive"},
		{"zero micro", Config{Stages: 2, MicroBatches: 0}, "MicroBatches must be positive"},
		{"indivisible blocks", Config{Stages: 3, MicroBatches: 2}, "not divisible"},
		{"bad method", Config{Method: "zb-h1", Stages: 2, MicroBatches: 2}, "unknown method"},
		{"chimera odd stages", Config{Method: "chimera", Stages: 1, MicroBatches: 2}, "even number of stages"},
		{"chimera odd micro", Config{Method: "chimera", Stages: 2, MicroBatches: 3}, "even number of micro-batches"},
	}
	for _, tc := range cases {
		_, err := NewWithConfig(m, tc.cfg)
		if err == nil {
			t.Fatalf("%s: expected error", tc.name)
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
	if _, err := NewWithConfig(nil, Config{Stages: 2, MicroBatches: 2}); err == nil || !strings.Contains(err.Error(), "nil model") {
		t.Fatalf("nil model: got %v", err)
	}
}

func TestTrainStepBatchValidation(t *testing.T) {
	m, c := newModelAndCorpus(t)
	e, err := New(m, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Batch size 6 not divisible by 4 micro-batches.
	batch := c.MakeBatch(6, data.DefaultBatchConfig(m.Config.SeqLen))
	if _, err := e.TrainStep(batch); err == nil {
		t.Fatal("expected error for indivisible batch")
	}
	wrong := c.MakeBatch(4, data.DefaultBatchConfig(8))
	if _, err := e.TrainStep(wrong); err == nil {
		t.Fatal("expected error for wrong sequence length")
	}
}

func TestSplitBatch(t *testing.T) {
	_, c := newModelAndCorpus(t)
	seqLen := bert.TinyConfig().SeqLen
	batch := c.MakeBatch(8, data.DefaultBatchConfig(seqLen))

	t.Run("n equals batch size", func(t *testing.T) {
		micro := splitBatch(batch, 8)
		if len(micro) != 8 {
			t.Fatalf("got %d micro-batches, want 8", len(micro))
		}
		for i, mb := range micro {
			if mb.BatchSize != 1 || mb.SeqLen != seqLen {
				t.Fatalf("micro %d: shape %dx%d", i, mb.BatchSize, mb.SeqLen)
			}
			if len(mb.Tokens) != seqLen || len(mb.Targets) != seqLen || len(mb.IsNext) != 1 {
				t.Fatalf("micro %d: slice lengths %d/%d/%d", i, len(mb.Tokens), len(mb.Targets), len(mb.IsNext))
			}
		}
	})
	t.Run("n equals one", func(t *testing.T) {
		micro := splitBatch(batch, 1)
		if len(micro) != 1 || micro[0].BatchSize != 8 {
			t.Fatalf("single micro-batch must cover the batch, got %+v", micro[0])
		}
		if &micro[0].Tokens[0] != &batch.Tokens[0] {
			t.Fatal("splitBatch must slice, not copy")
		}
	})
	t.Run("seqlen slicing bounds and isnext partition", func(t *testing.T) {
		micro := splitBatch(batch, 4)
		var tokens, targets []int
		var isNext []bool
		for _, mb := range micro {
			tokens = append(tokens, mb.Tokens...)
			targets = append(targets, mb.Targets...)
			isNext = append(isNext, mb.IsNext...)
		}
		if len(tokens) != len(batch.Tokens) || len(targets) != len(batch.Targets) || len(isNext) != len(batch.IsNext) {
			t.Fatal("micro-batches do not cover the batch")
		}
		for i := range tokens {
			if tokens[i] != batch.Tokens[i] || targets[i] != batch.Targets[i] {
				t.Fatalf("position %d: token/target mismatch after split", i)
			}
		}
		for i := range isNext {
			if isNext[i] != batch.IsNext[i] {
				t.Fatalf("sequence %d: IsNext mismatch after split", i)
			}
		}
	})
}

// The headline correctness property: every executable schedule — GPipe,
// 1F1B, and Chimera — produces the same loss and the same parameter
// gradients as a single-device full-batch step.
func TestSchedulesMatchSingleDeviceBERT(t *testing.T) {
	m, c := newModelAndCorpus(t)
	batch := c.MakeBatch(8, data.DefaultBatchConfig(m.Config.SeqLen))
	params := m.Params()

	// Single-device reference.
	nn.ZeroGrads(params)
	refLoss, err := m.Step(batch)
	if err != nil {
		t.Fatal(err)
	}
	refGrads := cloneGrads(params)

	for _, method := range []string{"gpipe", "1f1b", "chimera"} {
		e, err := NewWithConfig(m, Config{Method: method, Stages: 2, MicroBatches: 4})
		if err != nil {
			t.Fatal(err)
		}
		nn.ZeroGrads(params)
		res, err := e.TrainStep(batch)
		if err != nil {
			t.Fatalf("%s: %v", method, err)
		}
		if math.Abs(res.Loss.Total-refLoss.Total) > 1e-9 {
			t.Fatalf("%s: loss %.12f != single-device %.12f", method, res.Loss.Total, refLoss.Total)
		}
		if math.Abs(res.Loss.Components["mlm"]-refLoss.MLM) > 1e-9 ||
			math.Abs(res.Loss.Components["nsp"]-refLoss.NSP) > 1e-9 {
			t.Fatalf("%s: loss breakdown differs: %+v vs %+v", method, res.Loss.Components, refLoss)
		}
		if res.Loss.Tokens != refLoss.MaskedCount {
			t.Fatalf("%s: masked count %d != %d", method, res.Loss.Tokens, refLoss.MaskedCount)
		}
		requireGradsClose(t, params, refGrads, method)
		tl := e.LastTimeline()
		if tl == nil || tl.Devices != 2 {
			t.Fatalf("%s: missing executed timeline", method)
		}
		if len(tl.EventsOfKind(pipeline.Forward)) != 2*4 {
			t.Fatalf("%s: executed %d forward events, want 8", method, len(tl.EventsOfKind(pipeline.Forward)))
		}
		if len(tl.EventsOfKind(pipeline.Recompute)) != 2*4 {
			t.Fatalf("%s: executed %d recompute events, want 8", method, len(tl.EventsOfKind(pipeline.Recompute)))
		}
	}
}

// The same property for the decoder model: the engine is model-agnostic.
func TestSchedulesMatchSingleDeviceGPT(t *testing.T) {
	m, err := gpt.New(gpt.TinyConfig(), 99)
	if err != nil {
		t.Fatal(err)
	}
	c, err := data.NewCorpus(gpt.TinyConfig().VocabSize, 1.0, 7)
	if err != nil {
		t.Fatal(err)
	}
	batch := gpt.MakeBatch(c, 8, m.Config.SeqLen)
	params := m.Params()

	nn.ZeroGrads(params)
	refLoss, refCount, err := m.Step(batch.Tokens, batch.BatchSize)
	if err != nil {
		t.Fatal(err)
	}
	refGrads := cloneGrads(params)

	for _, method := range []string{"gpipe", "1f1b", "chimera"} {
		e, err := NewWithConfig(m, Config{Method: method, Stages: 2, MicroBatches: 4})
		if err != nil {
			t.Fatal(err)
		}
		nn.ZeroGrads(params)
		res, err := e.TrainStep(batch)
		if err != nil {
			t.Fatalf("%s: %v", method, err)
		}
		if math.Abs(res.Loss.Total-refLoss) > 1e-9 {
			t.Fatalf("%s: loss %.12f != single-device %.12f", method, res.Loss.Total, refLoss)
		}
		if res.Loss.Tokens != refCount {
			t.Fatalf("%s: predicted count %d != %d", method, res.Loss.Tokens, refCount)
		}
		requireGradsClose(t, params, refGrads, "gpt "+method)
	}
}

func TestPipelineMatchesAcrossMicroBatchCounts(t *testing.T) {
	// Gradients must be invariant to the micro-batch count (1, 2, 4).
	m, c := newModelAndCorpus(t)
	batch := c.MakeBatch(8, data.DefaultBatchConfig(m.Config.SeqLen))
	params := m.Params()
	var ref []*tensor.Matrix
	for _, micro := range []int{1, 2, 4} {
		e, err := New(m, 2, micro)
		if err != nil {
			t.Fatal(err)
		}
		nn.ZeroGrads(params)
		if _, err := e.TrainStep(batch); err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = cloneGrads(params)
			continue
		}
		requireGradsClose(t, params, ref, fmt.Sprintf("micro=%d", micro))
	}
}

func TestDeviceBusyReported(t *testing.T) {
	m, c := newModelAndCorpus(t)
	e, err := New(m, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	batch := c.MakeBatch(4, data.DefaultBatchConfig(m.Config.SeqLen))
	nn.ZeroGrads(m.Params())
	res, err := e.TrainStep(batch)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.DeviceBusy) != 2 {
		t.Fatalf("expected 2 device busy entries, got %d", len(res.DeviceBusy))
	}
	for d, busy := range res.DeviceBusy {
		if busy <= 0 {
			t.Fatalf("device %d reported no busy time", d)
		}
	}
}

// On a stage failure the step must abort cleanly: peers drain instead of
// dereferencing the poisoned nil activations/error-signals (the old
// engine forwarded y = x and gradOut = gradIn on error, nil-panicking
// downstream stages), and the engine stays usable for the next step.
func TestErrorPathDrainsWithoutPanic(t *testing.T) {
	m, c := newModelAndCorpus(t)
	params := m.Params()
	batch := c.MakeBatch(8, data.DefaultBatchConfig(m.Config.SeqLen))

	// Reference gradients from a healthy engine.
	ref, err := New(m, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	nn.ZeroGrads(params)
	if _, err := ref.TrainStep(batch); err != nil {
		t.Fatal(err)
	}
	refGrads := cloneGrads(params)

	for _, tc := range []struct {
		name string
		kind pipeline.WorkKind
		st   int
	}{
		{"fail forward stage 0", pipeline.Forward, 0},
		{"fail forward stage 1", pipeline.Forward, 1},
		{"fail backward stage 1", pipeline.Backward, 1},
	} {
		t.Run(tc.name, func(t *testing.T) {
			e, err := New(m, 2, 4)
			if err != nil {
				t.Fatal(err)
			}
			injected := fmt.Errorf("injected fault")
			e.failOp = func(op *pipeline.Op) error {
				if op.Kind == tc.kind && op.Stage == tc.st && op.MicroBatch == 1 {
					return injected
				}
				return nil
			}
			nn.ZeroGrads(params)
			_, err = e.TrainStep(batch)
			if err == nil || !strings.Contains(err.Error(), "injected fault") {
				t.Fatalf("expected injected fault to surface, got %v", err)
			}
			// The engine must be reusable: a clean step produces the
			// reference gradients again.
			e.failOp = nil
			nn.ZeroGrads(params)
			if _, err := e.TrainStep(batch); err != nil {
				t.Fatalf("engine unusable after aborted step: %v", err)
			}
			requireGradsClose(t, params, refGrads, "post-failure step")
		})
	}
}

func TestEngineTrainingConverges(t *testing.T) {
	// End-to-end: pipeline-parallel 1F1B training with LAMB reduces loss.
	m, c := newModelAndCorpus(t)
	e, err := NewWithConfig(m, Config{Method: "1f1b", Stages: 2, MicroBatches: 2})
	if err != nil {
		t.Fatal(err)
	}
	params := m.Params()
	opt := optim.NewLAMB(params, 0.01)
	sched := optim.PolyDecaySchedule{BaseLR: 5e-3, WarmupSteps: 5, TotalSteps: 40, Power: 0.5}
	var first, last float64
	const steps = 40
	for step := 0; step < steps; step++ {
		batch := c.MakeBatch(8, data.DefaultBatchConfig(m.Config.SeqLen))
		nn.ZeroGrads(params)
		res, err := e.TrainStep(batch)
		if err != nil {
			t.Fatal(err)
		}
		opt.Step(sched.LR(step))
		if step < 5 {
			first += res.Loss.Total / 5
		}
		if step >= steps-5 {
			last += res.Loss.Total / 5
		}
	}
	if last >= first-0.2 {
		t.Fatalf("pipelined training did not converge: %.3f -> %.3f", first, last)
	}
}

// K-FAC through the schedule: curvature and inversion ops are packed into
// the executable schedule and actually execute in their slots, refreshing
// the per-stage preconditioners and rewriting gradients at the step's
// precondition op.
func TestEngineKFACScheduleExecution(t *testing.T) {
	m, c := newModelAndCorpus(t)
	e, err := NewWithConfig(m, Config{Method: "1f1b", Stages: 2, MicroBatches: 4})
	if err != nil {
		t.Fatal(err)
	}
	params := m.Params()
	batch := c.MakeBatch(8, data.DefaultBatchConfig(m.Config.SeqLen))

	// Plain gradients for comparison.
	nn.ZeroGrads(params)
	if _, err := e.TrainStep(batch); err != nil {
		t.Fatal(err)
	}
	plain := cloneGrads(params)

	if err := e.EnableKFAC(kfac.Options{Damping: 1e-2, StatDecay: 0.9, UsePiDamping: true}, 2); err != nil {
		t.Fatal(err)
	}
	// The executable schedule now carries the K-FAC work.
	sched := e.Schedule()
	nFactors := 2 * len(e.StageLayers(0))
	var curvOps, invOps, precOps int
	for _, op := range sched.Ops {
		switch op.Kind {
		case pipeline.Curvature:
			curvOps++
		case pipeline.Inversion:
			invOps++
		case pipeline.Precondition:
			precOps++
		}
	}
	if want := 2 * 4 * nFactors; curvOps != want {
		t.Fatalf("schedule has %d curvature ops, want %d", curvOps, want)
	}
	if want := 2 * nFactors; invOps != want {
		t.Fatalf("schedule has %d inversion ops, want %d", invOps, want)
	}
	if precOps != 2 {
		t.Fatalf("schedule has %d precondition ops, want 2", precOps)
	}

	nn.ZeroGrads(params)
	res, err := e.TrainStep(batch)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Refreshed {
		t.Fatal("first K-FAC step must refresh curvature and inverses")
	}
	for s := 0; s < e.Stages(); s++ {
		for _, ls := range e.KFACStates(s).States() {
			if ls.CurvatureUpdates != 1 {
				t.Fatalf("stage %d layer %q: %d curvature updates, want 1", s, ls.Layer.Name, ls.CurvatureUpdates)
			}
			if !ls.HasInverses() {
				t.Fatalf("stage %d layer %q: missing inverses after refresh step", s, ls.Layer.Name)
			}
		}
	}
	// Gradients of K-FAC layers are preconditioned (differ from plain);
	// no NaNs anywhere.
	var changed bool
	for i, p := range params {
		if p.Grad.HasNaN() {
			t.Fatalf("NaN gradient in %s after K-FAC preconditioning", p.Name)
		}
		if !p.Grad.AllClose(plain[i], 1e-12) {
			changed = true
		}
	}
	if !changed {
		t.Fatal("preconditioning left every gradient untouched")
	}
	// The executed timeline shows the K-FAC work in the bubbles.
	tl := e.LastTimeline()
	if len(tl.EventsOfKind(pipeline.Curvature)) == 0 || len(tl.EventsOfKind(pipeline.Inversion)) == 0 {
		t.Fatal("executed timeline missing K-FAC events")
	}

	// Second step: non-refresh, preconditions with stale inverses.
	nn.ZeroGrads(params)
	res, err = e.TrainStep(batch)
	if err != nil {
		t.Fatal(err)
	}
	if res.Refreshed {
		t.Fatal("second step must reuse stale inverses (refreshEvery=2)")
	}
	if age := e.KFACStates(0).MaxInverseAge(); age != 2 {
		t.Fatalf("inverse age %d after two preconditioned steps, want 2", age)
	}
}

func TestEngineKFACTrainingConverges(t *testing.T) {
	// Full PipeFisher loop: bubble-packed curvature/inversion every 2
	// steps, per-step preconditioning, LAMB update — across schedules.
	for _, method := range []string{"gpipe", "chimera"} {
		t.Run(method, func(t *testing.T) {
			m, c := newModelAndCorpus(t)
			e, err := NewWithConfig(m, Config{Method: method, Stages: 2, MicroBatches: 2})
			if err != nil {
				t.Fatal(err)
			}
			if err := e.EnableKFAC(kfac.Options{Damping: 1e-2, StatDecay: 0.95, UsePiDamping: true}, 2); err != nil {
				t.Fatal(err)
			}
			params := m.Params()
			opt := optim.NewLAMB(params, 0.01)
			sched := optim.PolyDecaySchedule{BaseLR: 5e-3, WarmupSteps: 3, TotalSteps: 30, Power: 0.5}
			var first, last float64
			const steps = 30
			for step := 0; step < steps; step++ {
				batch := c.MakeBatch(8, data.DefaultBatchConfig(m.Config.SeqLen))
				nn.ZeroGrads(params)
				res, err := e.TrainStep(batch)
				if err != nil {
					t.Fatal(err)
				}
				opt.Step(sched.LR(step))
				if step < 5 {
					first += res.Loss.Total / 5
				}
				if step >= steps-5 {
					last += res.Loss.Total / 5
				}
			}
			if last >= first-0.1 {
				t.Fatalf("PipeFisher-style training did not converge: %.3f -> %.3f", first, last)
			}
		})
	}
}

// The cross-schedule gradient identity must also hold with parallel
// kernels enabled: blocked kernels reduce every output element in the same
// serial order regardless of worker count, so gradients stay bit-compatible
// with the single-device serial reference, and the executed timeline
// records the configured parallelism.
func TestSchedulesMatchSingleDeviceWithParallelKernels(t *testing.T) {
	defer tensor.SetParallelism(0)
	defer tensor.SetOpParallelism(0)
	tensor.SetParallelism(1)
	m, c := newModelAndCorpus(t)
	batch := c.MakeBatch(8, data.DefaultBatchConfig(m.Config.SeqLen))
	params := m.Params()

	// Serial single-device reference.
	nn.ZeroGrads(params)
	refLoss, err := m.Step(batch)
	if err != nil {
		t.Fatal(err)
	}
	refGrads := cloneGrads(params)

	tensor.SetParallelism(4)
	for _, method := range []string{"gpipe", "1f1b", "chimera"} {
		e, err := NewWithConfig(m, Config{Method: method, Stages: 2, MicroBatches: 4, Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		if err := e.EnableKFAC(kfac.DefaultOptions(), 2); err != nil {
			t.Fatal(err)
		}
		nn.ZeroGrads(params)
		res, err := e.TrainStep(batch)
		if err != nil {
			t.Fatalf("%s: %v", method, err)
		}
		if math.Abs(res.Loss.Total-refLoss.Total) > 1e-9 {
			t.Fatalf("%s: parallel loss %.12f != serial single-device %.12f", method, res.Loss.Total, refLoss.Total)
		}
		// The first K-FAC step refreshes but must precondition only after
		// the full backward — plain gradients are rewritten in place, so
		// compare against the reference before preconditioning via a
		// second, K-FAC-free engine instead.
		tl := e.LastTimeline()
		if tl.Parallelism != 4 {
			t.Fatalf("%s: executed timeline records parallelism %d, want 4", method, tl.Parallelism)
		}
		if tl.OpParallelism != 2 {
			t.Fatalf("%s: executed timeline records per-op share %d, want 2", method, tl.OpParallelism)
		}

		plain, err := NewWithConfig(m, Config{Method: method, Stages: 2, MicroBatches: 4, Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		nn.ZeroGrads(params)
		if _, err := plain.TrainStep(batch); err != nil {
			t.Fatalf("%s: %v", method, err)
		}
		requireGradsClose(t, params, refGrads, "parallel "+method)
	}
}

func TestStageLayers(t *testing.T) {
	m, _ := newModelAndCorpus(t)
	e, err := New(m, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(e.StageLayers(0)); got != 6 {
		t.Fatalf("stage 0 has %d K-FAC layers, want 6", got)
	}
	if got := len(e.StageLayers(1)); got != 6 {
		t.Fatalf("stage 1 has %d K-FAC layers, want 6", got)
	}
	// Stages own disjoint layers.
	seen := map[*nn.Dense]bool{}
	for s := 0; s < e.Stages(); s++ {
		for _, l := range e.StageLayers(s) {
			if seen[l] {
				t.Fatal("stages share a layer")
			}
			seen[l] = true
		}
	}
}
