package engine

import (
	"fmt"

	"repro/internal/kfac"
	"repro/internal/tensor"
)

// Round checkpoint/replay: with Config.Checkpoint enabled, TrainRound
// snapshots everything a round can mutate — the primary's parameter values
// and gradient accumulators, the attached optimizer's internal state, the
// per-stage K-FAC state, and the engine's refresh phase — into retained
// buffers at round start (equivalently: at the previous round's commit,
// since nothing changes between rounds). After an aborted round,
// RestoreCheckpoint rewinds to the snapshot; replaying the same batches
// then reproduces the fault-free run bit-identically, because every input
// to the round's math (parameters, optimizer momenta, K-FAC EMAs and
// inverses, step counters, refresh cadence) is restored exactly and the
// round's execution itself is deterministic.
//
// All buffers are plain allocations reused across saves (tensor.Reuse,
// never the workspace pool), so steady-state checkpointing allocates
// nothing and is invisible to the pool-leak audit.

// OptimizerState is the optimizer-side contract of the round checkpoint:
// flattenable internal state (momenta, second moments, bias-correction
// counters) that can be saved and restored exactly. optim.SGD, optim.Adam
// and optim.LAMB all implement it (optim.Stateful).
type OptimizerState interface {
	// StateLen returns the flattened state length in float64 words.
	StateLen() int
	// SaveState copies the state into buf (len == StateLen()).
	SaveState(buf []float64)
	// LoadState restores the state from buf (len == StateLen()).
	LoadState(buf []float64)
}

// AttachOptimizerState registers the optimizer whose internal state the
// round checkpoint must cover. Required (alongside SetOptimizer) before
// TrainRound on engines with Config.Checkpoint: replaying a round without
// rewinding the optimizer's momenta and step counters would not be
// bit-identical.
func (e *Engine) AttachOptimizerState(s OptimizerState) { e.optState = s }

// roundCheckpoint is the retained snapshot (see the file comment).
type roundCheckpoint struct {
	valid          bool
	stepIndex      int
	roundIndex     int
	kfacGen        int
	refreshPending bool
	params         []*tensor.Matrix // primary parameter values
	grads          []*tensor.Matrix // primary gradient accumulators
	opt            []float64        // flattened optimizer state
	kfacSnaps      []*kfac.Snapshot // per stage
}

// saveCheckpoint records the engine's committed state; buffers are reused
// from the previous save.
func (e *Engine) saveCheckpoint() {
	c := &e.ckpt
	ps := e.reps[0].params
	if len(c.params) != len(ps) {
		c.params = make([]*tensor.Matrix, len(ps))
		c.grads = make([]*tensor.Matrix, len(ps))
	}
	for i, p := range ps {
		c.params[i] = tensor.Reuse(c.params[i], p.Value.Rows, p.Value.Cols)
		copy(c.params[i].Data, p.Value.Data)
		c.grads[i] = tensor.Reuse(c.grads[i], p.Grad.Rows, p.Grad.Cols)
		copy(c.grads[i].Data, p.Grad.Data)
	}
	if e.optState != nil {
		if len(c.opt) != e.optState.StateLen() {
			c.opt = make([]float64, e.optState.StateLen())
		}
		e.optState.SaveState(c.opt)
	}
	if e.kfacPre != nil {
		if len(c.kfacSnaps) != len(e.kfacPre) {
			c.kfacSnaps = make([]*kfac.Snapshot, len(e.kfacPre))
			for s := range c.kfacSnaps {
				c.kfacSnaps[s] = &kfac.Snapshot{}
			}
		}
		for s, pre := range e.kfacPre {
			c.kfacSnaps[s].Save(pre)
		}
	}
	c.stepIndex = e.stepIndex
	c.roundIndex = e.roundIndex
	c.kfacGen = e.kfacGen
	// Pending carried generations (overlapped rounds) are live pooled state
	// the checkpoint does not deep-copy; restoring forces a full refresh
	// instead, which re-derives everything the carried ops would have.
	c.refreshPending = e.refreshPending || e.carryPending()
	c.valid = true
}

// RestoreCheckpoint rewinds the engine to the last round checkpoint —
// parameters, gradients, optimizer state, K-FAC state, and the refresh
// phase — and returns the global step index to replay from. Call it after
// TrainRound returned an error on an engine with Config.Checkpoint;
// re-running TrainRound with the same batches then reproduces the
// fault-free round bit-identically (committed steps of the aborted round
// are rewound too: the checkpoint is the round's start).
func (e *Engine) RestoreCheckpoint() (int, error) {
	if !e.cfg.Checkpoint {
		return 0, fmt.Errorf("engine: RestoreCheckpoint needs Config.Checkpoint")
	}
	c := &e.ckpt
	if !c.valid {
		return 0, fmt.Errorf("engine: no round checkpoint saved yet (TrainRound saves one at every round start)")
	}
	for i, p := range e.reps[0].params {
		p.Value.CopyFrom(c.params[i])
		p.Grad.CopyFrom(c.grads[i])
	}
	if e.optState != nil {
		e.optState.LoadState(c.opt)
	}
	if e.kfacPre != nil {
		for s, pre := range e.kfacPre {
			if err := c.kfacSnaps[s].Restore(pre); err != nil {
				return 0, fmt.Errorf("engine: restoring K-FAC state of stage %d: %w", s, err)
			}
		}
	}
	e.stepIndex = c.stepIndex
	e.roundIndex = c.roundIndex
	e.kfacGen = c.kfacGen
	e.refreshPending = c.refreshPending
	// Whatever the aborted round left in the generation pools is stale now.
	for _, p := range e.kfacPools {
		if p != nil {
			p.reset()
		}
	}
	for i := range e.carryQ {
		e.carryQ[i] = nil
	}
	// Replicas resync from the restored primary (TrainRound re-broadcasts
	// anyway; doing it here leaves the engine consistent immediately).
	if err := e.broadcastParams(); err != nil {
		return 0, fmt.Errorf("engine: %w", err)
	}
	return e.stepIndex, nil
}
