// Package autotune closes the loop between the execution engine and the
// schedule packer: it refits the packing cost model from the engine's
// *executed* timelines, re-runs the schedule search over a candidate space
// (schedule family x round length K x overlap/carry depth x inversion
// sharding), and hot-swaps the engine to the predicted-best executable at
// a round boundary. The predictions and the execution share one schedule
// form (internal/schedule's Executable), so a ranking is a statement about
// exactly the op lists the engine would run — and because the engine's
// micro-batch reduction order is fixed, a swap never changes the math,
// only the time it takes.
package autotune

import (
	"fmt"

	"repro/internal/engine"
	"repro/internal/hardware"
	"repro/internal/pipeline"
	"repro/internal/schedule"
	"repro/internal/trace"
)

// Config bounds the tuner's behavior.
type Config struct {
	// WarmupRounds are ignored before any observation is recorded (cold
	// caches and scheduler ramp-up; default 2).
	WarmupRounds int
	// Interval is the number of rounds between tuner decisions (default 4).
	// Between decisions the tuner only observes.
	Interval int
	// MinRelGain is the predicted relative step-time improvement a swap
	// must clear (default 0.02): below it the tuner holds — re-packing
	// discards in-flight refresh state, so marginal predictions don't pay.
	MinRelGain float64
	// Methods/MaxRefreshSteps/MaxCarryDepth bound the candidate space
	// (see schedule.Space; the topology dimensions come from the engine).
	Methods         []string
	MaxRefreshSteps int
	MaxCarryDepth   int
}

// Decision is one ranking of the candidate space.
type Decision struct {
	Round           int
	Current, Choice schedule.Candidate
	CurrentStep     hardware.Microseconds
	ChoiceStep      hardware.Microseconds
	Swapped         bool
	Reason          string
	ModelError      float64
	RefreshScrubbed bool // the swap discarded in-flight refresh state
}

// Tuner drives the closed loop for one engine. It is not safe for
// concurrent use; call Observe from the loop that owns the engine,
// after each TrainRound.
type Tuner struct {
	eng     *engine.Engine
	cfg     Config
	fit     *hardware.Fit
	records []trace.TuneRecord
}

// New creates a tuner for an engine. The engine should have K-FAC enabled
// (the candidate space reshapes refresh packing; without a refresh there
// is little to tune, though forward/backward refits still apply).
func New(eng *engine.Engine, cfg Config) (*Tuner, error) {
	if eng == nil {
		return nil, fmt.Errorf("autotune: nil engine")
	}
	if cfg.WarmupRounds == 0 {
		cfg.WarmupRounds = 2
	}
	if cfg.WarmupRounds < 0 {
		cfg.WarmupRounds = 0
	}
	if cfg.Interval <= 0 {
		cfg.Interval = 4
	}
	if cfg.MinRelGain == 0 {
		cfg.MinRelGain = 0.02
	}
	if cfg.MinRelGain < 0 {
		cfg.MinRelGain = 0
	}
	return &Tuner{eng: eng, cfg: cfg, fit: hardware.NewFit(cfg.WarmupRounds)}, nil
}

// Observe ingests the round the engine just executed and, on decision
// rounds, ranks the candidate space and possibly hot-swaps the engine.
// Call it after every successful TrainRound (skip error rounds — an
// aborted round's timeline is partial). The returned Decision is nil on
// observation-only rounds. A Reconfigure failure is returned but leaves
// the engine running its current schedule.
func (t *Tuner) Observe() (*Decision, error) {
	t.fit.BeginRound()
	t.ingestTimeline()
	// Straggler headroom: a slow peer delays every collective rendezvous in
	// a way this rank's own op durations never show (the wait hides inside
	// whichever op anchors the fold). Heartbeat-carried round times expose
	// the ratio; pricing the synchronization classes up by it makes the
	// ranking prefer schedules that overlap communication when the group is
	// imbalanced. The scale clears as soon as the straggler catches up.
	slow := t.eng.RankSlowness()
	t.fit.SetScale(int(pipeline.SyncGrad), slow)
	t.fit.SetScale(int(pipeline.SyncCurvature), slow)
	rec := trace.TuneRecord{Round: t.fit.Rounds(), ModelError: -1, Current: t.CurrentCandidate().String()}
	if me, ok := t.ModelError(); ok {
		rec.ModelError = me
	}
	if !t.fit.Warm() || t.fit.Rounds()%t.cfg.Interval != 0 {
		t.records = append(t.records, rec)
		return nil, nil
	}
	d, err := t.decide(&rec)
	t.records = append(t.records, rec)
	return d, err
}

// ingestTimeline feeds the engine's last executed timeline into the fit,
// excluding what measurement must not trust: retried executions (their
// duration includes backoff), degraded placeholders, and zero-duration
// side effects.
func (t *Tuner) ingestTimeline() {
	tl := t.eng.LastTimeline()
	if tl == nil {
		return
	}
	for d := 0; d < tl.Devices; d++ {
		for _, ev := range tl.Events[d] {
			if ev.Retries > 0 || ev.Op.Kind == pipeline.Degraded {
				continue
			}
			t.fit.Observe(int(ev.Op.Kind), ev.Duration())
		}
	}
}

// CurrentCandidate renders the engine's running configuration as a point
// of the candidate space.
func (t *Tuner) CurrentCandidate() schedule.Candidate {
	c := schedule.Candidate{
		Method:            t.eng.Method(),
		RefreshSteps:      t.eng.RoundSteps(),
		Overlap:           t.eng.Overlapped(),
		InversionParallel: t.eng.InversionParallel(),
	}
	if d := t.eng.CarryDepth(); c.Overlap && d > 2 {
		c.CarryDepth = d
	}
	return c
}

// FittedCosts returns the engine's modeled cost shape with every class the
// fit has observed replaced by its measured median: unobserved classes
// keep their modeled values, so a cold fit changes nothing.
func (t *Tuner) FittedCosts() pipeline.StageCosts {
	c := t.eng.ModeledCosts()
	est := func(k pipeline.WorkKind, cur hardware.Microseconds) hardware.Microseconds {
		if m, ok := t.fit.Estimate(int(k)); ok {
			return m
		}
		return cur
	}
	c.Forward = est(pipeline.Forward, c.Forward)
	bw := est(pipeline.Backward, c.Backward)
	if m, ok := t.fit.Estimate(int(pipeline.Recompute)); ok {
		// The cost model folds recomputation into backward.
		bw += m
	}
	c.Backward = bw
	c.Precondition = est(pipeline.Precondition, c.Precondition)
	c.OptStep = est(pipeline.OptStep, c.OptStep)
	if c.SyncGrad > 0 {
		c.SyncGrad = est(pipeline.SyncGrad, c.SyncGrad)
	}
	if c.SyncCurvature > 0 {
		c.SyncCurvature = est(pipeline.SyncCurvature, c.SyncCurvature)
	}
	if m, ok := t.fit.Estimate(int(pipeline.Curvature)); ok {
		c.CurvaturePerMicroBatch = 0
		for i := range c.CurvatureUnits {
			c.CurvatureUnits[i] = m
			c.CurvaturePerMicroBatch += m
		}
	}
	if m, ok := t.fit.Estimate(int(pipeline.Inversion)); ok {
		for i := range c.InversionUnits {
			c.InversionUnits[i] = m
		}
	}
	return c
}

// ModelError reports the shape-normalized relative error between the
// engine's current packing cost model and the fitted estimates: every
// class is expressed as a ratio to its side's Forward cost before
// comparing, so the metric measures the *shape* mismatch that drives bad
// packing decisions, not the units (modeled costs are abstract; measured
// ones are wall-clock). It shrinks toward zero once the tuner installs
// fitted costs — the convergence artifact WriteTuneCSV plots.
func (t *Tuner) ModelError() (float64, bool) {
	modeled := t.eng.ModeledCosts()
	mFwd := float64(modeled.Forward)
	eFwd, ok := t.fit.Estimate(int(pipeline.Forward))
	if !ok || mFwd <= 0 {
		return 0, false
	}
	classes := []struct {
		kind pipeline.WorkKind
		cost hardware.Microseconds
	}{
		{pipeline.Backward, modeled.Backward},
		{pipeline.Precondition, modeled.Precondition},
		{pipeline.OptStep, modeled.OptStep},
		{pipeline.SyncGrad, modeled.SyncGrad},
		{pipeline.SyncCurvature, modeled.SyncCurvature},
		{pipeline.Curvature, meanUnits(modeled.CurvatureUnits)},
		{pipeline.Inversion, meanUnits(modeled.InversionUnits)},
	}
	var sum float64
	var n int
	for _, cl := range classes {
		if cl.cost <= 0 {
			continue
		}
		m, ok := t.fit.Estimate(int(cl.kind))
		if !ok {
			continue
		}
		want := float64(m) / float64(eFwd)
		got := float64(cl.cost) / mFwd
		diff := got - want
		if diff < 0 {
			diff = -diff
		}
		sum += diff / want
		n++
	}
	if n == 0 {
		return 0, false
	}
	return sum / float64(n), true
}

func meanUnits(us []hardware.Microseconds) hardware.Microseconds {
	if len(us) == 0 {
		return 0
	}
	var s hardware.Microseconds
	for _, u := range us {
		s += u
	}
	return s / hardware.Microseconds(len(us))
}

// decide ranks the candidate space under the fitted costs and swaps the
// engine when the predicted gain clears the threshold.
func (t *Tuner) decide(rec *trace.TuneRecord) (*Decision, error) {
	fitted := t.FittedCosts()
	base := schedule.Config{
		Stages:            t.eng.Stages(),
		MicroBatches:      t.eng.MicroBatches(),
		DataParallelWidth: t.eng.Replicas(),
		Costs:             fitted,
	}
	space := schedule.Space{
		Methods:           t.cfg.Methods,
		MaxRefreshSteps:   t.cfg.MaxRefreshSteps,
		MaxCarryDepth:     t.cfg.MaxCarryDepth,
		Stages:            t.eng.Stages(),
		MicroBatches:      t.eng.MicroBatches(),
		DataParallelWidth: t.eng.Replicas(),
	}
	cur := t.CurrentCandidate()
	d := &Decision{Round: t.fit.Rounds(), Current: cur, Choice: cur}
	if me, ok := t.ModelError(); ok {
		d.ModelError = me
	}
	preds := schedule.RankCandidates(base, schedule.Enumerate(space))
	if len(preds) == 0 {
		d.Reason = "no candidate schedule built"
		t.fillRecord(rec, d)
		return d, nil
	}
	best := preds[0]
	curPred, err := schedule.Predict(base, cur)
	if err != nil {
		// The current configuration no longer builds under the fitted
		// costs (should not happen — it is running); treat any candidate
		// as an improvement.
		curPred = schedule.Prediction{Candidate: cur, StepTime: best.StepTime * 1000}
	}
	d.CurrentStep = curPred.StepTime
	d.Choice = best.Candidate
	d.ChoiceStep = best.StepTime
	if best.Candidate == cur {
		d.Reason = "keep: current configuration ranks best"
		t.fillRecord(rec, d)
		return d, nil
	}
	gain := float64(curPred.StepTime-best.StepTime) / float64(curPred.StepTime)
	if gain < t.cfg.MinRelGain {
		d.Choice = cur
		d.ChoiceStep = curPred.StepTime
		d.Reason = fmt.Sprintf("hold: best %s gains %.1f%%, below threshold %.1f%%",
			best.Candidate, gain*100, t.cfg.MinRelGain*100)
		t.fillRecord(rec, d)
		return d, nil
	}
	sc := engine.SwapConfig{
		Method:            best.Candidate.Method,
		RefreshSteps:      best.Candidate.RefreshSteps,
		Overlap:           best.Candidate.Overlap,
		InversionParallel: best.Candidate.InversionParallel,
		CarryDepth:        best.Candidate.CarryDepth,
		Costs:             &fitted,
	}
	if err := t.eng.Reconfigure(sc); err != nil {
		d.Choice = cur
		d.ChoiceStep = curPred.StepTime
		d.Reason = fmt.Sprintf("swap to %s failed: %v", best.Candidate, err)
		t.fillRecord(rec, d)
		return d, fmt.Errorf("autotune: %w", err)
	}
	d.Swapped = true
	d.RefreshScrubbed = true
	d.Reason = fmt.Sprintf("swap: %.1f%% predicted gain", gain*100)
	t.fillRecord(rec, d)
	return d, nil
}

func (t *Tuner) fillRecord(rec *trace.TuneRecord, d *Decision) {
	rec.Decision = true
	rec.Current = d.Current.String()
	rec.Choice = d.Choice.String()
	rec.CurrentStep = d.CurrentStep
	rec.ChoiceStep = d.ChoiceStep
	rec.Swapped = d.Swapped
	rec.Reason = d.Reason
}

// Records returns the per-round tuning records (model-error trajectory
// plus decisions) for trace.WriteTuneCSV / trace.RenderTuneLog.
func (t *Tuner) Records() []trace.TuneRecord { return t.records }

// Rounds reports how many rounds the tuner has observed.
func (t *Tuner) Rounds() int { return t.fit.Rounds() }
