package autotune

import (
	"strings"
	"testing"

	"repro/internal/bert"
	"repro/internal/data"
	"repro/internal/engine"
	"repro/internal/kfac"
	"repro/internal/optim"
	"repro/internal/trace"
)

// newTestEngine builds a tiny BERT engine in the deliberately bad starting
// configuration of the convergence tests: gpipe, K = 1, no overlap.
func newTestEngine(t *testing.T, cfg engine.Config) (*engine.Engine, func(rounds int)) {
	t.Helper()
	bc := bert.TinyConfig()
	bc.Blocks = 2
	m, err := bert.New(bc, 123)
	if err != nil {
		t.Fatal(err)
	}
	e, err := engine.NewWithConfig(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.EnableKFAC(kfac.Options{Damping: 1e-2, StatDecay: 0.9, UsePiDamping: true}, cfg.RefreshSteps); err != nil {
		t.Fatal(err)
	}
	opt := optim.NewLAMB(m.Params(), 0.01)
	e.SetOptimizer(func(step int) error {
		opt.Step(5e-3)
		return nil
	})
	corpus, err := data.NewCorpus(bc.VocabSize, 1.0, 321)
	if err != nil {
		t.Fatal(err)
	}
	drive := func(rounds int) {
		for r := 0; r < rounds; r++ {
			k := e.RoundSteps() // K changes across swaps
			batches := make([]*data.Batch, k)
			for i := range batches {
				batches[i] = corpus.MakeBatch(2*cfg.MicroBatches, data.DefaultBatchConfig(bc.SeqLen))
			}
			if _, err := e.TrainRound(batches); err != nil {
				t.Fatal(err)
			}
		}
	}
	return e, drive
}

func badStartConfig() engine.Config {
	return engine.Config{Method: "gpipe", Stages: 2, MicroBatches: 4, RefreshSteps: 1}
}

// The tuner must observe executed timelines, produce a model-error
// trajectory, and replace observed cost classes with measured medians.
func TestTunerObservesAndFits(t *testing.T) {
	e, drive := newTestEngine(t, badStartConfig())
	tn, err := New(e, Config{WarmupRounds: 1, Interval: 100})
	if err != nil {
		t.Fatal(err)
	}
	static := e.ModeledCosts()
	for r := 0; r < 4; r++ {
		drive(1)
		if _, err := tn.Observe(); err != nil {
			t.Fatal(err)
		}
	}
	recs := tn.Records()
	if len(recs) != 4 {
		t.Fatalf("records = %d, want 4", len(recs))
	}
	if recs[0].ModelError >= 0 {
		t.Fatal("warm-up round produced a model error")
	}
	if recs[3].ModelError < 0 {
		t.Fatal("no model error after warm rounds")
	}
	fitted := tn.FittedCosts()
	if fitted.Forward == static.Forward && fitted.Backward == static.Backward {
		t.Fatalf("fitted costs did not move off the static shape: %+v", fitted)
	}
	if len(fitted.CurvatureUnits) != len(static.CurvatureUnits) {
		t.Fatalf("fitted cost shape lost factors: %d vs %d",
			len(fitted.CurvatureUnits), len(static.CurvatureUnits))
	}
}

// From the deliberately bad start (gpipe, K = 1, serialized), the tuner
// must swap to a better-ranked configuration within bounded rounds, the
// engine must keep training through the swap, and once the running
// configuration ranks best the tuner must hold (no churn).
func TestTunerConvergesFromBadStart(t *testing.T) {
	e, drive := newTestEngine(t, badStartConfig())
	tn, err := New(e, Config{
		WarmupRounds: 1, Interval: 2, MinRelGain: 0.01,
		Methods: []string{"gpipe", "1f1b"}, MaxRefreshSteps: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	start := tn.CurrentCandidate()
	var swapped *Decision
	for r := 0; r < 12 && swapped == nil; r++ {
		drive(1)
		d, err := tn.Observe()
		if err != nil {
			t.Fatal(err)
		}
		if d != nil && d.Swapped {
			swapped = d
		}
	}
	if swapped == nil {
		t.Fatalf("tuner never swapped off the bad start %s", start)
	}
	if swapped.Choice == start {
		t.Fatalf("swap decision chose the starting configuration: %+v", swapped)
	}
	if swapped.ChoiceStep >= swapped.CurrentStep {
		t.Fatalf("swap without predicted gain: %d -> %d us/step",
			swapped.CurrentStep, swapped.ChoiceStep)
	}
	if got := tn.CurrentCandidate(); got != swapped.Choice {
		t.Fatalf("engine runs %s after swapping to %s", got, swapped.Choice)
	}
	// The engine keeps training through the swap, and parameters stay
	// finite.
	drive(2)
	for _, p := range e.StageLayers(0) {
		for _, prm := range p.Params() {
			if prm.Value.MaxAbs() != prm.Value.MaxAbs() { // NaN check
				t.Fatalf("parameter %s went NaN after swap", prm.Name)
			}
		}
	}
	// Subsequent decisions hold: the adopted configuration predicts best
	// under its own fitted costs, so the tuner must not churn back.
	adopted := tn.CurrentCandidate()
	for r := 0; r < 4; r++ {
		drive(1)
		d, err := tn.Observe()
		if err != nil {
			t.Fatal(err)
		}
		if d != nil && d.Swapped {
			t.Fatalf("tuner churned after adopting %s: %+v", adopted, d)
		}
	}
}

// Decision rounds where the current configuration ranks best must not
// touch the engine, and the tune artifact must render both forms.
func TestTunerRecordsAndArtifacts(t *testing.T) {
	e, drive := newTestEngine(t, badStartConfig())
	tn, err := New(e, Config{
		WarmupRounds: 1, Interval: 2, MinRelGain: 0.01,
		Methods: []string{"gpipe", "1f1b"}, MaxRefreshSteps: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 6; r++ {
		drive(1)
		if _, err := tn.Observe(); err != nil {
			t.Fatal(err)
		}
	}
	recs := tn.Records()
	var decisions int
	for _, r := range recs {
		if r.Decision {
			decisions++
			if r.Choice == "" || r.Current == "" {
				t.Fatalf("decision record missing candidates: %+v", r)
			}
		}
	}
	if decisions == 0 {
		t.Fatal("no decision records after 6 rounds at interval 2")
	}
	var csv, log strings.Builder
	if err := trace.WriteTuneCSV(&csv, recs); err != nil {
		t.Fatal(err)
	}
	if err := trace.RenderTuneLog(&log, recs); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(csv.String(), "model_error") {
		t.Fatalf("tune CSV missing header: %q", csv.String())
	}
	if !strings.Contains(log.String(), "round ") {
		t.Fatalf("tune log missing decisions: %q", log.String())
	}
}
