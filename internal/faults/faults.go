// Package faults provides deterministic, reproducible fault plans for the
// schedule-driven executor. A Plan names a set of injection points — (step,
// device, op-kind, micro-batch) coordinates over the executable schedule —
// and what goes wrong there: an op failure, a device stall (delay
// injection), a dropped collective, or NaN/Inf corruption of the op's
// output. The engine consults the plan's Injector immediately before
// executing each op; everything the injector does is a pure function of the
// plan plus per-fault fire counters, so the same plan against the same
// schedule misbehaves identically on every run — including on a
// restore-and-replay pass, where counters consumed before an abort stay
// consumed.
//
// The package deliberately knows nothing about the engine: it matches on
// pipeline.WorkKind coordinates only, so the simulator, tests, and future
// transports can reuse the same plans.
package faults

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/pipeline"
)

// Kind classifies what a fault does to the op it fires on.
type Kind int

const (
	// Fail makes the op return an injected error.
	Fail Kind = iota
	// Stall delays the op by Fault.Delay before it executes. The engine
	// treats long stalls like hung kernels: the watchdog attributes them
	// once they exceed the op deadline.
	Stall
	// Drop makes a collective op (sync-grad, sync-curvature) fail as if
	// the transport lost the message. On non-collective ops it behaves
	// like Fail.
	Drop
	// Corrupt poisons the op's numeric output with NaN after it runs.
	Corrupt
	// Kill terminates the whole rank at the matched op: the engine invokes
	// its registered kill hook (the CLI exits the process; tests sever the
	// rank's transport), simulating a machine loss the survivors must
	// regroup around. Usually combined with rank= so exactly one member of
	// a multi-process group dies.
	Kill
)

var kindNames = map[Kind]string{
	Fail:    "fail",
	Stall:   "stall",
	Drop:    "drop",
	Corrupt: "corrupt",
	Kill:    "kill",
}

func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Any matches every value of a coordinate in a Fault.
const Any = -1

// Fault is one injection point. Zero-valued coordinates are NOT wildcards —
// use Any (-1) to match every step/device/micro-batch/rank. Op uses OpAny
// to match every op kind.
type Fault struct {
	Kind   Kind
	Rank   int               // data-parallel rank to target, Any = every rank (Plan.ForRank filters)
	Step   int               // global training step, Any = every step
	Device int               // schedule device index, Any = every device
	Op     pipeline.WorkKind // op kind to match, OpAny = every kind
	Micro  int               // micro-batch index, Any = every micro-batch
	Count  int               // fire at most Count matches (0 = unlimited)
	Delay  time.Duration     // Stall only: injected delay
}

// OpAny matches every op kind in Fault.Op.
const OpAny pipeline.WorkKind = -1

// matches reports whether the fault applies at the given coordinates.
func (f *Fault) matches(step, device int, kind pipeline.WorkKind, micro int) bool {
	if f.Step != Any && f.Step != step {
		return false
	}
	if f.Device != Any && f.Device != device {
		return false
	}
	if f.Op != OpAny && f.Op != kind {
		return false
	}
	if f.Micro != Any && f.Micro != micro {
		return false
	}
	return true
}

// String renders the fault in the -faults CLI spec syntax.
func (f Fault) String() string {
	var b strings.Builder
	b.WriteString(f.Kind.String())
	sep := ":"
	field := func(name, val string) {
		b.WriteString(sep)
		sep = ","
		b.WriteString(name)
		b.WriteByte('=')
		b.WriteString(val)
	}
	if f.Rank != Any {
		field("rank", strconv.Itoa(f.Rank))
	}
	if f.Step != Any {
		field("step", strconv.Itoa(f.Step))
	}
	if f.Device != Any {
		field("dev", strconv.Itoa(f.Device))
	}
	if f.Op != OpAny {
		field("op", f.Op.String())
	}
	if f.Micro != Any {
		field("micro", strconv.Itoa(f.Micro))
	}
	if f.Count != 0 {
		field("count", strconv.Itoa(f.Count))
	}
	if f.Delay != 0 {
		field("delay", f.Delay.String())
	}
	return b.String()
}

// Plan is a reproducible set of faults. Seed identifies randomly generated
// plans (Random) so failures can be reproduced from a log line; hand-written
// plans may leave it zero.
type Plan struct {
	Seed   int64
	Faults []Fault
}

// String renders the plan in the -faults CLI spec syntax (semicolon-joined).
func (p *Plan) String() string {
	parts := make([]string, len(p.Faults))
	for i, f := range p.Faults {
		parts[i] = f.String()
	}
	return strings.Join(parts, ";")
}

// ForRank projects the plan onto one member of a multi-process group: the
// faults targeting that rank (or every rank) survive with their rank
// selector satisfied; faults aimed at other ranks drop out. Returns nil —
// a never-firing plan — when nothing applies, so a rank-targeted plan
// costs every other rank the usual zero (a nil Injector keeps the engine
// on its fault-free fast path). The engine applies this at construction
// with its transport rank.
func (p *Plan) ForRank(rank int) *Plan {
	if p == nil {
		return nil
	}
	out := &Plan{Seed: p.Seed}
	for _, f := range p.Faults {
		if f.Rank == Any || f.Rank == rank {
			out.Faults = append(out.Faults, f)
		}
	}
	if len(out.Faults) == 0 {
		return nil
	}
	return out
}

// Outcome is what the injector decided for one op execution. Zero value
// means "no fault here".
type Outcome struct {
	Err     error         // non-nil: the op fails with this error (Fail/Drop)
	Delay   time.Duration // non-zero: stall this long before executing
	Corrupt bool          // poison the op's output with NaN after it runs
	Kill    bool          // terminate the whole rank at this op (Kill faults)
}

// Injector evaluates a Plan at op coordinates. Safe for concurrent use by
// the engine's device goroutines; per-fault fire counters are atomic and
// persist for the injector's lifetime, so a Count-limited fault consumed
// before a round abort stays consumed on the replay pass.
type Injector struct {
	plan  Plan
	fired []atomic.Int64 // one counter per fault
}

// NewInjector builds an injector for the plan. A nil plan yields a nil
// injector, which never fires.
func NewInjector(plan *Plan) *Injector {
	if plan == nil {
		return nil
	}
	return &Injector{plan: *plan, fired: make([]atomic.Int64, len(plan.Faults))}
}

// Plan returns a copy of the injector's plan.
func (in *Injector) Plan() Plan {
	return Plan{Seed: in.plan.Seed, Faults: append([]Fault(nil), in.plan.Faults...)}
}

// At evaluates the plan at one op execution. Every matching fault fires
// (consuming one count each); their effects combine into a single Outcome,
// with the first matching Fail/Drop supplying Err and delays summing.
// A nil injector returns the zero Outcome.
func (in *Injector) At(step, device int, kind pipeline.WorkKind, micro int) Outcome {
	if in == nil {
		return Outcome{}
	}
	var out Outcome
	for i := range in.plan.Faults {
		f := &in.plan.Faults[i]
		if !f.matches(step, device, kind, micro) {
			continue
		}
		if f.Count > 0 {
			// Reserve one firing; back out if the budget is spent.
			if n := in.fired[i].Add(1); n > int64(f.Count) {
				in.fired[i].Add(-1)
				continue
			}
		} else {
			in.fired[i].Add(1)
		}
		switch f.Kind {
		case Fail:
			if out.Err == nil {
				out.Err = fmt.Errorf("faults: injected failure (fault %d: %s) at step %d device %d op %s micro %d",
					i, f.String(), step, device, kind, micro)
			}
		case Drop:
			if out.Err == nil {
				out.Err = fmt.Errorf("faults: injected collective drop (fault %d: %s) at step %d device %d op %s micro %d",
					i, f.String(), step, device, kind, micro)
			}
		case Stall:
			out.Delay += f.Delay
		case Corrupt:
			out.Corrupt = true
		case Kill:
			out.Kill = true
		}
	}
	return out
}

// Fired returns how many times fault i has fired so far.
func (in *Injector) Fired(i int) int64 {
	if in == nil || i < 0 || i >= len(in.fired) {
		return 0
	}
	return in.fired[i].Load()
}

// opKinds maps spec names to WorkKinds; it must cover every kind the
// schedule can emit (pipeline.WorkKind.String values).
var opKinds = map[string]pipeline.WorkKind{}

func init() {
	for k := pipeline.Forward; k <= pipeline.Recompute; k++ {
		opKinds[k.String()] = k
	}
}

// Parse decodes a CLI fault spec: semicolon-separated faults, each
// "kind:field=value,field=value". Kinds: fail, stall, drop, corrupt, kill.
// Fields: rank, step, dev, op, micro, count, delay (Go duration). Omitted
// rank/step/dev/micro match everything; omitted op matches every kind.
//
//	fail:step=2,dev=1,op=curvature
//	stall:op=forward,delay=5ms,count=2;drop:op=sync-grad,count=1
//	kill:rank=1,step=2
func Parse(spec string) (*Plan, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, fmt.Errorf("faults: empty spec")
	}
	plan := &Plan{}
	for _, part := range strings.Split(spec, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		kindStr, rest, _ := strings.Cut(part, ":")
		var kind Kind
		found := false
		for k, name := range kindNames {
			if name == kindStr {
				kind, found = k, true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("faults: unknown fault kind %q in %q (want fail, stall, drop, corrupt, or kill)", kindStr, part)
		}
		f := Fault{Kind: kind, Rank: Any, Step: Any, Device: Any, Op: OpAny, Micro: Any}
		if rest != "" {
			for _, kv := range strings.Split(rest, ",") {
				key, val, ok := strings.Cut(strings.TrimSpace(kv), "=")
				if !ok {
					return nil, fmt.Errorf("faults: malformed field %q in %q (want key=value)", kv, part)
				}
				switch key {
				case "rank", "step", "dev", "micro", "count":
					n, err := strconv.Atoi(val)
					if err != nil {
						return nil, fmt.Errorf("faults: bad %s value %q in %q: %v", key, val, part, err)
					}
					switch key {
					case "rank":
						if n < 0 {
							return nil, fmt.Errorf("faults: negative rank in %q", part)
						}
						f.Rank = n
					case "step":
						f.Step = n
					case "dev":
						f.Device = n
					case "micro":
						f.Micro = n
					case "count":
						if n < 0 {
							return nil, fmt.Errorf("faults: negative count in %q", part)
						}
						f.Count = n
					}
				case "op":
					wk, ok := opKinds[val]
					if !ok {
						names := make([]string, 0, len(opKinds))
						for name := range opKinds {
							names = append(names, name)
						}
						sort.Strings(names)
						return nil, fmt.Errorf("faults: unknown op kind %q in %q (want one of %s)", val, part, strings.Join(names, ", "))
					}
					f.Op = wk
				case "delay":
					d, err := time.ParseDuration(val)
					if err != nil {
						return nil, fmt.Errorf("faults: bad delay %q in %q: %v", val, part, err)
					}
					if d < 0 {
						return nil, fmt.Errorf("faults: negative delay in %q", part)
					}
					f.Delay = d
				default:
					return nil, fmt.Errorf("faults: unknown field %q in %q", key, part)
				}
			}
		}
		if f.Kind == Stall && f.Delay == 0 {
			return nil, fmt.Errorf("faults: stall fault %q needs delay=<duration>", part)
		}
		plan.Faults = append(plan.Faults, f)
	}
	if len(plan.Faults) == 0 {
		return nil, fmt.Errorf("faults: spec %q contains no faults", spec)
	}
	return plan, nil
}

// Random generates a reproducible plan of n faults over steps [0, maxStep)
// and devices [0, devices). The same (seed, n, maxStep, devices) always
// yields the same plan; the seed is recorded in the plan for reproduction.
// Faults are Count-limited (1–2 firings) so soak runs terminate, and stalls
// stay in the low-millisecond range.
func Random(seed int64, n, maxStep, devices int) *Plan {
	rng := rand.New(rand.NewSource(seed))
	plan := &Plan{Seed: seed}
	kinds := []Kind{Fail, Stall, Drop, Corrupt}
	// Every op kind the executor runs, including collectives.
	ops := []pipeline.WorkKind{
		pipeline.Forward, pipeline.Backward, pipeline.Curvature,
		pipeline.Inversion, pipeline.Precondition, pipeline.SyncGrad,
		pipeline.SyncCurvature, pipeline.OptStep, pipeline.Recompute,
	}
	for i := 0; i < n; i++ {
		// Kill is deliberately absent from the pool: a random rank death
		// ends the soak run instead of exercising recovery.
		f := Fault{
			Kind:   kinds[rng.Intn(len(kinds))],
			Rank:   Any,
			Step:   rng.Intn(maxStep),
			Device: Any,
			Op:     ops[rng.Intn(len(ops))],
			Micro:  Any,
			Count:  1 + rng.Intn(2),
		}
		if devices > 0 && rng.Intn(2) == 0 {
			f.Device = rng.Intn(devices)
		}
		if f.Kind == Stall {
			f.Delay = time.Duration(1+rng.Intn(4)) * time.Millisecond
		}
		plan.Faults = append(plan.Faults, f)
	}
	return plan
}
