package faults

import (
	"strings"
	"testing"
	"time"

	"repro/internal/pipeline"
)

func TestParseRoundTrip(t *testing.T) {
	spec := "fail:step=2,dev=1,op=curvature;stall:op=forward,delay=5ms,count=2;drop:op=sync-grad,count=1;corrupt:step=3,op=backward,micro=1"
	plan, err := Parse(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Faults) != 4 {
		t.Fatalf("got %d faults, want 4", len(plan.Faults))
	}
	f := plan.Faults[0]
	if f.Kind != Fail || f.Step != 2 || f.Device != 1 || f.Op != pipeline.Curvature || f.Micro != Any || f.Count != 0 {
		t.Fatalf("fault 0 parsed wrong: %+v", f)
	}
	f = plan.Faults[1]
	if f.Kind != Stall || f.Delay != 5*time.Millisecond || f.Count != 2 || f.Op != pipeline.Forward || f.Step != Any {
		t.Fatalf("fault 1 parsed wrong: %+v", f)
	}
	f = plan.Faults[2]
	if f.Kind != Drop || f.Op != pipeline.SyncGrad || f.Count != 1 {
		t.Fatalf("fault 2 parsed wrong: %+v", f)
	}
	f = plan.Faults[3]
	if f.Kind != Corrupt || f.Step != 3 || f.Op != pipeline.Backward || f.Micro != 1 {
		t.Fatalf("fault 3 parsed wrong: %+v", f)
	}
	// String() renders back to a parseable, equivalent spec.
	plan2, err := Parse(plan.String())
	if err != nil {
		t.Fatalf("re-parse of %q: %v", plan.String(), err)
	}
	if len(plan2.Faults) != len(plan.Faults) {
		t.Fatalf("round-trip changed fault count: %d vs %d", len(plan2.Faults), len(plan.Faults))
	}
	for i := range plan.Faults {
		if plan.Faults[i] != plan2.Faults[i] {
			t.Errorf("fault %d round-trip mismatch: %+v vs %+v", i, plan.Faults[i], plan2.Faults[i])
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, spec := range []string{
		"",
		"explode:step=1",
		"fail:step=x",
		"fail:bogus=1",
		"fail:step",
		"stall:op=forward",       // stall without delay
		"stall:delay=-1ms",       // negative delay
		"fail:count=-1",          // negative count
		"fail:op=quantum-tunnel", // unknown op kind
		";;",
	} {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", spec)
		}
	}
}

func TestInjectorMatching(t *testing.T) {
	plan := &Plan{Faults: []Fault{
		{Kind: Fail, Step: 2, Device: 1, Op: pipeline.Curvature, Micro: Any},
	}}
	in := NewInjector(plan)
	if out := in.At(2, 1, pipeline.Curvature, 0); out.Err == nil {
		t.Fatal("exact match did not fire")
	}
	for _, c := range []struct {
		step, dev int
		kind      pipeline.WorkKind
	}{
		{1, 1, pipeline.Curvature}, // wrong step
		{2, 0, pipeline.Curvature}, // wrong device
		{2, 1, pipeline.Forward},   // wrong op
	} {
		if out := in.At(c.step, c.dev, c.kind, 0); out.Err != nil || out.Delay != 0 || out.Corrupt {
			t.Errorf("At(%d,%d,%s) fired, want miss", c.step, c.dev, c.kind)
		}
	}
	// Error names the coordinates.
	out := in.At(2, 1, pipeline.Curvature, 3)
	for _, want := range []string{"step 2", "device 1", "curvature", "micro 3"} {
		if !strings.Contains(out.Err.Error(), want) {
			t.Errorf("error %q missing %q", out.Err, want)
		}
	}
}

func TestInjectorWildcardsAndKinds(t *testing.T) {
	plan := &Plan{Faults: []Fault{
		{Kind: Stall, Step: Any, Device: Any, Op: pipeline.Forward, Micro: Any, Delay: time.Millisecond},
		{Kind: Corrupt, Step: Any, Device: Any, Op: pipeline.Forward, Micro: 1},
		{Kind: Drop, Step: Any, Device: Any, Op: pipeline.SyncGrad, Micro: Any},
	}}
	in := NewInjector(plan)
	out := in.At(7, 3, pipeline.Forward, 1)
	if out.Delay != time.Millisecond || !out.Corrupt || out.Err != nil {
		t.Fatalf("combined outcome wrong: %+v", out)
	}
	out = in.At(7, 3, pipeline.Forward, 0)
	if out.Delay != time.Millisecond || out.Corrupt {
		t.Fatalf("micro filter wrong: %+v", out)
	}
	if out := in.At(0, 0, pipeline.SyncGrad, 0); out.Err == nil {
		t.Fatal("drop fault did not fire on sync-grad")
	}
}

func TestInjectorCountPersists(t *testing.T) {
	plan := &Plan{Faults: []Fault{
		{Kind: Fail, Step: Any, Device: Any, Op: pipeline.Backward, Micro: Any, Count: 2},
	}}
	in := NewInjector(plan)
	fired := 0
	// Counts persist across rounds/replays: the third and later matches do
	// not fire no matter how the calls are grouped.
	for i := 0; i < 5; i++ {
		if out := in.At(i, 0, pipeline.Backward, 0); out.Err != nil {
			fired++
		}
	}
	if fired != 2 {
		t.Fatalf("count-limited fault fired %d times, want 2", fired)
	}
	if in.Fired(0) != 2 {
		t.Fatalf("Fired(0) = %d, want 2", in.Fired(0))
	}
}

func TestNilInjector(t *testing.T) {
	var in *Injector
	if out := in.At(0, 0, pipeline.Forward, 0); out != (Outcome{}) {
		t.Fatalf("nil injector fired: %+v", out)
	}
	if NewInjector(nil) != nil {
		t.Fatal("NewInjector(nil) != nil")
	}
}

func TestParseRankAndKill(t *testing.T) {
	plan, err := Parse("kill:rank=1,step=2,count=1")
	if err != nil {
		t.Fatal(err)
	}
	f := plan.Faults[0]
	if f.Kind != Kill || f.Rank != 1 || f.Step != 2 || f.Count != 1 || f.Op != OpAny {
		t.Fatalf("kill fault parsed wrong: %+v", f)
	}
	// rank= round-trips through String.
	plan2, err := Parse(plan.String())
	if err != nil {
		t.Fatalf("re-parse of %q: %v", plan.String(), err)
	}
	if plan2.Faults[0] != f {
		t.Fatalf("round-trip mismatch: %+v vs %+v", plan2.Faults[0], f)
	}
	if !strings.Contains(plan.String(), "rank=1") {
		t.Fatalf("String() = %q, missing rank selector", plan.String())
	}
	if _, err := Parse("kill:rank=-2"); err == nil {
		t.Fatal("negative rank parsed")
	}
	// A kill fires as Outcome.Kill at its coordinates.
	in := NewInjector(plan)
	if out := in.At(2, 0, pipeline.Forward, 0); !out.Kill || out.Err != nil {
		t.Fatalf("kill outcome wrong: %+v", out)
	}
	if out := in.At(2, 0, pipeline.Backward, 0); out.Kill {
		t.Fatal("count-limited kill fired twice")
	}
}

func TestPlanForRank(t *testing.T) {
	plan, err := Parse("kill:rank=2,step=1;fail:op=backward;stall:rank=0,delay=1ms")
	if err != nil {
		t.Fatal(err)
	}
	r0 := plan.ForRank(0)
	if len(r0.Faults) != 2 || r0.Faults[0].Kind != Fail || r0.Faults[1].Kind != Stall {
		t.Fatalf("ForRank(0) = %+v, want the wildcard fail and the rank-0 stall", r0)
	}
	r2 := plan.ForRank(2)
	if len(r2.Faults) != 2 || r2.Faults[0].Kind != Kill || r2.Faults[1].Kind != Fail {
		t.Fatalf("ForRank(2) = %+v, want the rank-2 kill and the wildcard fail", r2)
	}
	only, err := Parse("kill:rank=2")
	if err != nil {
		t.Fatal(err)
	}
	if only.ForRank(1) != nil {
		t.Fatal("ForRank with no applicable faults should be nil (never-firing)")
	}
	if (*Plan)(nil).ForRank(0) != nil {
		t.Fatal("nil plan ForRank should stay nil")
	}
}

func TestRandomDeterministic(t *testing.T) {
	a := Random(42, 6, 10, 4)
	b := Random(42, 6, 10, 4)
	if len(a.Faults) != 6 || a.Seed != 42 {
		t.Fatalf("Random shape wrong: %+v", a)
	}
	for i := range a.Faults {
		if a.Faults[i] != b.Faults[i] {
			t.Fatalf("Random not deterministic at %d: %+v vs %+v", i, a.Faults[i], b.Faults[i])
		}
	}
	c := Random(43, 6, 10, 4)
	same := true
	for i := range a.Faults {
		if a.Faults[i] != c.Faults[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical plans")
	}
	for _, f := range a.Faults {
		if f.Count < 1 || f.Count > 2 {
			t.Errorf("Random fault count %d outside [1,2]", f.Count)
		}
		if f.Kind == Stall && (f.Delay <= 0 || f.Delay > 10*time.Millisecond) {
			t.Errorf("Random stall delay %v outside sane range", f.Delay)
		}
		if f.Step < 0 || f.Step >= 10 {
			t.Errorf("Random step %d outside [0,10)", f.Step)
		}
	}
}
