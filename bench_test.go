// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation. Each benchmark regenerates the corresponding experiment and
// reports the headline quantities as custom metrics (utilization %,
// refresh steps, ratios, minutes), so
//
//	go test -bench=. -benchmem
//
// prints the same rows/series the paper reports. Absolute times differ
// from the authors' P100 testbed (our substrate is a calibrated simulator,
// see DESIGN.md), but the shapes — who wins, by what factor, where the
// crossovers fall — are asserted in the package test suites and visible in
// the metrics here. EXPERIMENTS.md indexes paper-vs-measured values.
package repro

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/arch"
	"repro/internal/autotune"
	"repro/internal/bert"
	"repro/internal/data"
	"repro/internal/engine"
	"repro/internal/hardware"
	"repro/internal/kfac"
	"repro/internal/nn"
	"repro/internal/optim"
	"repro/internal/perfmodel"
	"repro/internal/pipeline"
	"repro/internal/schedule"
	"repro/internal/transport"
)

// costsFor builds stage costs for the profile experiments.
func costsFor(b *testing.B, a arch.Transformer, blocks, micro, dp int) pipeline.StageCosts {
	b.Helper()
	costs, err := pipeline.CostsFor(pipeline.CostConfig{
		Arch: a, BlocksPerStage: blocks, MicroBatch: micro,
		GPU: hardware.P100, DataParallelWidth: dp,
	})
	if err != nil {
		b.Fatal(err)
	}
	return costs
}

func assign(b *testing.B, cfg schedule.Config) *schedule.Result {
	b.Helper()
	res, err := schedule.Assign(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// BenchmarkFigure1_GPipeSchematic reproduces the schematic schedule of
// Figure 1: GPipe with 4 stages, 4 micro-batches, 4 devices, and PipeFisher
// refreshing the curvature over (about) two pipeline steps.
func BenchmarkFigure1_GPipeSchematic(b *testing.B) {
	costs := costsFor(b, arch.BERTBase, 1, 32, 1)
	var res *schedule.Result
	for i := 0; i < b.N; i++ {
		res = assign(b, schedule.Config{Method: "gpipe", Stages: 4, MicroBatches: 4, Costs: costs})
	}
	b.ReportMetric(100*res.VanillaUtilization, "vanilla-util-%")
	b.ReportMetric(100*res.Utilization, "pipefisher-util-%")
	b.ReportMetric(float64(res.RefreshSteps), "refresh-steps")
}

// BenchmarkFigure3_GPipe1F1BUtilization reproduces Figure 3: GPipe and 1F1B
// profiles for BERT-Base (4 stages x 3 blocks, N=4, B=32, P100), vanilla vs
// PipeFisher vs PipeFisher with data & inversion parallelism (8 GPUs).
// Paper: 41.7% -> 89.0% (GPipe), 41.5% -> 88.7% (1F1B), 86.2/86.3% w/ DP.
func BenchmarkFigure3_GPipe1F1BUtilization(b *testing.B) {
	for _, method := range []string{"gpipe", "1f1b"} {
		b.Run(method, func(b *testing.B) {
			costs := costsFor(b, arch.BERTBase, 3, 32, 1)
			var res *schedule.Result
			for i := 0; i < b.N; i++ {
				res = assign(b, schedule.Config{Method: method, Stages: 4, MicroBatches: 4, Costs: costs})
			}
			b.ReportMetric(100*res.VanillaUtilization, "vanilla-util-%")
			b.ReportMetric(100*res.Utilization, "pipefisher-util-%")
			b.ReportMetric(float64(res.RefreshSteps), "refresh-steps")
		})
		b.Run(method+"-data-inv-parallel", func(b *testing.B) {
			costs := costsFor(b, arch.BERTBase, 3, 32, 2)
			var res *schedule.Result
			for i := 0; i < b.N; i++ {
				res = assign(b, schedule.Config{
					Method: method, Stages: 4, MicroBatches: 4, Costs: costs,
					DataParallelWidth: 2, InversionParallel: true,
				})
			}
			b.ReportMetric(100*res.Utilization, "pipefisher-util-%")
			b.ReportMetric(float64(res.Timeline.Devices), "gpus")
		})
	}
}

// BenchmarkFigure4_ChimeraUtilization reproduces Figure 4: Chimera with
// BERT-Large (8 stages x 3 blocks, N=8, B=32) vanilla vs PipeFisher with
// data & inversion parallelism. Paper: utilization 59.8% -> 97.6%.
func BenchmarkFigure4_ChimeraUtilization(b *testing.B) {
	costs := costsFor(b, arch.BERTLarge, 3, 32, 2)
	var res *schedule.Result
	for i := 0; i < b.N; i++ {
		res = assign(b, schedule.Config{
			Method: "chimera", Stages: 8, MicroBatches: 8, Costs: costs,
			InversionParallel: true,
		})
	}
	b.ReportMetric(100*res.VanillaUtilization, "vanilla-util-%")
	b.ReportMetric(100*res.Utilization, "pipefisher-util-%")
	b.ReportMetric(float64(res.RefreshSteps), "refresh-steps")
	b.ReportMetric(float64(res.StepTime)/1000, "step-ms")
}

// BenchmarkFigure5_PerfModelChimeraBase evaluates the §3.3 performance
// model over the Figure 5 grid (Chimera, BERT-Base blocks, D in {4,8,16},
// B_micro in {8,16,32}, with and without recomputation).
func BenchmarkFigure5_PerfModelChimeraBase(b *testing.B) {
	var lastRatio float64
	for i := 0; i < b.N; i++ {
		for _, bm := range []int{8, 16, 32} {
			for _, d := range []int{4, 8, 16} {
				for _, rec := range []bool{false, true} {
					m, err := perfmodel.Evaluate(perfmodel.Input{
						Arch: arch.BERTBase, GPU: hardware.P100, Method: perfmodel.Chimera,
						D: d, NMicro: d, BMicro: bm, Recompute: rec,
					})
					if err != nil {
						b.Fatal(err)
					}
					lastRatio = m.Ratio
				}
			}
		}
	}
	b.ReportMetric(lastRatio, "ratio-D16-B32-R")
}

// scalingBench runs the Figure 6 / 11-16 sweep for one architecture and
// reports the corner ratios.
func scalingBench(b *testing.B, a arch.Transformer, bmicros []int) {
	var pts []perfmodel.SweepPoint
	for i := 0; i < b.N; i++ {
		var err error
		pts, err = perfmodel.Sweep(a, perfmodel.Chimera, []int{4, 8, 16, 32}, bmicros, []int{1, 2, 3}, hardware.All())
		if err != nil {
			b.Fatal(err)
		}
	}
	var minR, maxR, maxSpeedup float64
	minR = 1e18
	for _, p := range pts {
		if p.Model.Ratio < minR {
			minR = p.Model.Ratio
		}
		if p.Model.Ratio > maxR {
			maxR = p.Model.Ratio
		}
		if s := p.Model.SpeedupVsSkip(); s > maxSpeedup {
			maxSpeedup = s
		}
	}
	b.ReportMetric(minR, "ratio-min")
	b.ReportMetric(maxR, "ratio-max")
	b.ReportMetric(maxSpeedup, "speedup-vs-skip-max")
	b.ReportMetric(float64(len(pts)), "sweep-points")
}

// BenchmarkFigure6_ScalingBERTBase reproduces Figure 6 (= Figure 11).
func BenchmarkFigure6_ScalingBERTBase(b *testing.B) {
	scalingBench(b, arch.BERTBase, []int{1, 2, 4, 8, 16, 32, 64})
}

// BenchmarkFigure7_ConvergenceBERTBase reproduces the Figure 7 comparison
// at laptop scale: tiny-BERT MLM+NSP pretraining with NVLAMB vs K-FAC.
// Paper: K-FAC reaches NVLAMB's final loss in 42.0% of the steps and 48.7%
// of the wall-clock time (applying Chimera step times).
func BenchmarkFigure7_ConvergenceBERTBase(b *testing.B) {
	const steps = 300
	var fracSteps, fracTime float64
	for i := 0; i < b.N; i++ {
		run := func(kind bert.OptimizerKind) *bert.TrainResult {
			m, err := bert.New(bert.TinyConfig(), 100)
			if err != nil {
				b.Fatal(err)
			}
			c, err := data.NewCorpus(bert.TinyConfig().VocabSize, 1.0, 200)
			if err != nil {
				b.Fatal(err)
			}
			res, err := bert.Pretrain(m, c, bert.TrainConfig{
				Optimizer: kind, Steps: steps, BatchSize: 16,
			})
			if err != nil {
				b.Fatal(err)
			}
			return res
		}
		nv := run(bert.OptNVLAMB)
		kf := run(bert.OptKFAC)
		at := kf.StepsToReach(nv.FinalLoss)
		if at < 0 {
			at = steps
		}
		fracSteps = float64(at) / float64(steps)
		// Convert to time with the Chimera step-time ratio (§4): the
		// PipeFisher step is only ~4-7% longer than the vanilla step.
		costs := costsFor(b, arch.BERTBase, 3, 32, 1)
		res := assign(b, schedule.Config{Method: "chimera", Stages: 4, MicroBatches: 4, Costs: costs, InversionParallel: true})
		fracTime = fracSteps * float64(res.StepTime) / float64(res.VanillaStepTime)
	}
	b.ReportMetric(100*fracSteps, "kfac-steps-%-of-nvlamb") // paper: 42.0
	b.ReportMetric(100*fracTime, "kfac-time-%-of-nvlamb")   // paper: 48.7
}

// BenchmarkFigure8_LRSchedule evaluates the two Phase-1 learning-rate
// schedules of Figure 8 over all 7038 steps.
func BenchmarkFigure8_LRSchedule(b *testing.B) {
	nv := optim.NewNVLAMBSchedule()
	kf := optim.NewKFACSchedule()
	var peakGap float64
	for i := 0; i < b.N; i++ {
		peakGap = 0
		for t := 0; t < 7038; t++ {
			if gap := kf.LR(t) - nv.LR(t); gap > peakGap {
				peakGap = gap
			}
		}
	}
	b.ReportMetric(peakGap*1000, "peak-lr-gap-x1e3")
	b.ReportMetric(nv.LR(1999)*1000, "nvlamb-lr-at-2000-x1e3")
}

// BenchmarkFigure9_PerfModelBase evaluates the Figure 9 grids (GPipe/1F1B
// and Chimera, BERT-Base).
func BenchmarkFigure9_PerfModelBase(b *testing.B) {
	var gRatio, cRatio float64
	for i := 0; i < b.N; i++ {
		for _, method := range []perfmodel.Method{perfmodel.GPipe1F1B, perfmodel.Chimera} {
			for _, bm := range []int{8, 16, 32} {
				for _, d := range []int{4, 8, 16} {
					m, err := perfmodel.Evaluate(perfmodel.Input{
						Arch: arch.BERTBase, GPU: hardware.P100, Method: method,
						D: d, NMicro: d, BMicro: bm,
					})
					if err != nil {
						b.Fatal(err)
					}
					if method == perfmodel.GPipe1F1B {
						gRatio = m.Ratio
					} else {
						cRatio = m.Ratio
					}
				}
			}
		}
	}
	b.ReportMetric(gRatio, "gpipe-ratio-D16-B32")
	b.ReportMetric(cRatio, "chimera-ratio-D16-B32")
}

// BenchmarkFigure10_PerfModelLarge is the BERT-Large version of Figure 10.
func BenchmarkFigure10_PerfModelLarge(b *testing.B) {
	var tput float64
	for i := 0; i < b.N; i++ {
		for _, method := range []perfmodel.Method{perfmodel.GPipe1F1B, perfmodel.Chimera} {
			for _, bm := range []int{8, 16, 32} {
				for _, d := range []int{4, 8, 16} {
					m, err := perfmodel.Evaluate(perfmodel.Input{
						Arch: arch.BERTLarge, GPU: hardware.P100, Method: method,
						D: d, NMicro: d, BMicro: bm,
					})
					if err != nil {
						b.Fatal(err)
					}
					tput = m.ThroughputPipeFisher
				}
			}
		}
	}
	b.ReportMetric(tput, "chimera-tput-D16-B32-seqs/s")
}

// BenchmarkFigure12_ScalingBERTLarge reproduces Figure 12.
func BenchmarkFigure12_ScalingBERTLarge(b *testing.B) {
	scalingBench(b, arch.BERTLarge, []int{1, 2, 4, 8, 16, 32, 64})
}

// BenchmarkFigure13_ScalingT5Base reproduces Figure 13 (S = 512).
func BenchmarkFigure13_ScalingT5Base(b *testing.B) {
	scalingBench(b, arch.T5Base, []int{1, 2, 4, 8, 16, 32, 64})
}

// BenchmarkFigure14_ScalingT5Large reproduces Figure 14.
func BenchmarkFigure14_ScalingT5Large(b *testing.B) {
	scalingBench(b, arch.T5Large, []int{1, 2, 4, 8, 16, 32, 64})
}

// BenchmarkFigure15_ScalingOPT125M reproduces Figure 15 (S = 2048, B <= 8).
func BenchmarkFigure15_ScalingOPT125M(b *testing.B) {
	scalingBench(b, arch.OPT125M, []int{1, 2, 4, 8})
}

// BenchmarkFigure16_ScalingOPT350M reproduces Figure 16.
func BenchmarkFigure16_ScalingOPT350M(b *testing.B) {
	scalingBench(b, arch.OPT350M, []int{1, 2, 4, 8})
}

// BenchmarkTable2_BERTLargePhase1 reproduces Table 2: Phase-1 BERT-Large
// training time with NVLAMB/Chimera (7038 steps) vs K-FAC/Chimera w/
// PipeFisher (5000 steps, per Pauloski et al. 2022). Paper: 275.1 min vs
// 208.3 min (75.7%), step times 2345.6 ms vs 2499.5 ms (+6.5%).
func BenchmarkTable2_BERTLargePhase1(b *testing.B) {
	const (
		nvlambSteps = 7038
		kfacSteps   = 5000
	)
	var res *schedule.Result
	costs := costsFor(b, arch.BERTLarge, 3, 32, 2)
	for i := 0; i < b.N; i++ {
		res = assign(b, schedule.Config{
			Method: "chimera", Stages: 8, MicroBatches: 8, Costs: costs,
			InversionParallel: true,
		})
	}
	nvMin := float64(res.VanillaStepTime) / 1e6 / 60 * nvlambSteps
	kfMin := float64(res.StepTime) / 1e6 / 60 * kfacSteps
	b.ReportMetric(float64(res.VanillaStepTime)/1000, "nvlamb-step-ms") // paper: 2345.6
	b.ReportMetric(float64(res.StepTime)/1000, "kfac-step-ms")          // paper: 2499.5
	b.ReportMetric(nvMin, "nvlamb-phase1-min")                          // paper: 275.1
	b.ReportMetric(kfMin, "kfac-phase1-min")                            // paper: 208.3
	b.ReportMetric(100*kfMin/nvMin, "kfac-time-%-of-nvlamb")            // paper: 75.7
	b.ReportMetric(100*res.VanillaUtilization, "vanilla-util-%")        // paper: 59.8
	b.ReportMetric(100*res.Utilization, "pipefisher-util-%")            // paper: 97.6
}

// BenchmarkTable3_Architectures exercises the Table 3 architecture
// definitions and their derived work/memory quantities.
func BenchmarkTable3_Architectures(b *testing.B) {
	var checksum float64
	for i := 0; i < b.N; i++ {
		checksum = 0
		for _, a := range arch.All() {
			checksum += a.BlockForwardFLOPs(8) + a.BlockInversionFLOPs() + a.BlockParamBytes()
		}
	}
	b.ReportMetric(checksum/1e12, "tflops-checksum")
	b.ReportMetric(float64(len(arch.All())), "architectures")
}

// --- Ablation benches for the design choices called out in DESIGN.md ---

// BenchmarkAblationInversionParallel compares PipeFisher's refresh interval
// and utilization with and without inversion parallelism on Chimera.
func BenchmarkAblationInversionParallel(b *testing.B) {
	costs := costsFor(b, arch.BERTLarge, 3, 32, 2)
	for _, inv := range []bool{false, true} {
		name := "off"
		if inv {
			name = "on"
		}
		b.Run(name, func(b *testing.B) {
			var res *schedule.Result
			for i := 0; i < b.N; i++ {
				res = assign(b, schedule.Config{
					Method: "chimera", Stages: 8, MicroBatches: 8, Costs: costs,
					InversionParallel: inv,
				})
			}
			b.ReportMetric(float64(res.RefreshSteps), "refresh-steps")
			b.ReportMetric(100*res.Utilization, "util-%")
		})
	}
}

// BenchmarkAblationRefreshCadence varies the K-FAC curvature/inversion
// refresh interval in real training, quantifying the cost of stale
// curvature that PipeFisher's frequent refreshes avoid.
func BenchmarkAblationRefreshCadence(b *testing.B) {
	for _, every := range []int{2, 16} {
		b.Run(map[int]string{2: "fresh-every-2", 16: "stale-every-16"}[every], func(b *testing.B) {
			var final float64
			for i := 0; i < b.N; i++ {
				m, err := bert.New(bert.TinyConfig(), 100)
				if err != nil {
					b.Fatal(err)
				}
				c, err := data.NewCorpus(bert.TinyConfig().VocabSize, 1.0, 200)
				if err != nil {
					b.Fatal(err)
				}
				res, err := bert.Pretrain(m, c, bert.TrainConfig{
					Optimizer: bert.OptKFAC, Steps: 80, BatchSize: 8,
					CurvatureEvery: every, InversionEvery: every,
				})
				if err != nil {
					b.Fatal(err)
				}
				final = res.FinalLoss
			}
			b.ReportMetric(final, "final-loss")
		})
	}
}

// BenchmarkAppendixC1_AsyncPipeline compares synchronous 1F1B against the
// asynchronous PipeDream-style schedule of Appendix C.1: asynchronous
// pipelines fill bubbles with stale-weight forward/backward work instead
// of K-FAC work, achieving near-perfect utilization at the cost of
// gradient staleness up to D-1 steps.
func BenchmarkAppendixC1_AsyncPipeline(b *testing.B) {
	costs := costsFor(b, arch.BERTBase, 3, 32, 1)
	var asyncUtil, syncUtil float64
	for i := 0; i < b.N; i++ {
		async, err := pipeline.BuildPipeDream(pipeline.BuildConfig{
			Stages: 4, MicroBatches: 32, Costs: costs,
		})
		if err != nil {
			b.Fatal(err)
		}
		asyncTL, err := pipeline.Run(async)
		if err != nil {
			b.Fatal(err)
		}
		asyncUtil = asyncTL.UtilizationOver(asyncTL.Makespan/4, 3*asyncTL.Makespan/4)
		sync, err := pipeline.Build1F1B(pipeline.BuildConfig{
			Stages: 4, MicroBatches: 4, Steps: 8, Costs: costs,
		})
		if err != nil {
			b.Fatal(err)
		}
		syncTL, err := pipeline.Run(sync)
		if err != nil {
			b.Fatal(err)
		}
		syncUtil = syncTL.Utilization()
	}
	b.ReportMetric(100*asyncUtil, "async-steady-util-%")
	b.ReportMetric(100*syncUtil, "sync-util-%")
	b.ReportMetric(float64(pipeline.WeightStaleness(0, 4)), "max-weight-staleness")
}

// BenchmarkSection5_ExtraWorkGeneralization packs Shampoo and SAM work
// into the same bubbles (§5's proposed extensions).
func BenchmarkSection5_ExtraWorkGeneralization(b *testing.B) {
	costs := costsFor(b, arch.BERTBase, 3, 32, 1)
	base := schedule.Config{Method: "gpipe", Stages: 4, MicroBatches: 4, Costs: costs}
	b.Run("shampoo", func(b *testing.B) {
		var res *schedule.Result
		for i := 0; i < b.N; i++ {
			var err error
			res, err = schedule.AssignShampoo(base)
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(res.RefreshSteps), "refresh-steps")
		b.ReportMetric(100*res.Utilization, "util-%")
	})
	b.Run("sam", func(b *testing.B) {
		var res *schedule.SAMResult
		for i := 0; i < b.N; i++ {
			var err error
			res, err = schedule.AssignSAM(base)
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(100*res.HiddenFraction, "hidden-%")
		b.ReportMetric(100*res.Utilization, "util-%")
	})
}

// BenchmarkAblationNoSplit quantifies the paper's bubble-spilling rule:
// forbidding work items to span multiple bubbles slows the refresh or
// strands work.
func BenchmarkAblationNoSplit(b *testing.B) {
	costs := costsFor(b, arch.BERTBase, 3, 32, 1)
	for _, noSplit := range []bool{false, true} {
		name := "split"
		if noSplit {
			name = "whole-bubble-only"
		}
		b.Run(name, func(b *testing.B) {
			var res *schedule.Result
			for i := 0; i < b.N; i++ {
				res = assign(b, schedule.Config{
					Method: "gpipe", Stages: 4, MicroBatches: 4, Costs: costs, NoSplit: noSplit,
				})
			}
			b.ReportMetric(float64(res.RefreshSteps), "refresh-steps")
			b.ReportMetric(float64(res.Unassigned), "unassigned")
			b.ReportMetric(100*res.Utilization, "util-%")
		})
	}
}

// BenchmarkAblationDamping sweeps the K-FAC damping, the one numerical
// hyperparameter the preconditioner adds.
func BenchmarkAblationDamping(b *testing.B) {
	for _, damping := range []float64{1e-3, 1e-1} {
		b.Run(map[float64]string{1e-3: "damping-1e-3", 1e-1: "damping-1e-1"}[damping], func(b *testing.B) {
			var final float64
			for i := 0; i < b.N; i++ {
				m, err := bert.New(bert.TinyConfig(), 100)
				if err != nil {
					b.Fatal(err)
				}
				c, err := data.NewCorpus(bert.TinyConfig().VocabSize, 1.0, 200)
				if err != nil {
					b.Fatal(err)
				}
				res, err := bert.Pretrain(m, c, bert.TrainConfig{
					Optimizer: bert.OptKFAC, Steps: 80, BatchSize: 8, Damping: damping,
				})
				if err != nil {
					b.Fatal(err)
				}
				final = res.FinalLoss
			}
			b.ReportMetric(final, "final-loss")
		})
	}
}

// BenchmarkEngineStep measures per-step throughput of the *real* executor
// at data-parallel widths W = 1 and W = 2: the same global batch, either
// on one pipeline or sharded across two replicas with the in-process
// gradient collective. CI distills these rows into BENCH_engine.json so
// the perf trajectory covers the executor, not just the kernels.
func BenchmarkEngineStep(b *testing.B) {
	for _, w := range []int{1, 2} {
		b.Run(fmt.Sprintf("W%d", w), func(b *testing.B) {
			m, err := bert.New(bert.TinyConfig(), 5)
			if err != nil {
				b.Fatal(err)
			}
			c, err := data.NewCorpus(bert.TinyConfig().VocabSize, 1.0, 17)
			if err != nil {
				b.Fatal(err)
			}
			e, err := engine.NewWithConfig(m, engine.Config{
				Method: "1f1b", Stages: 2, MicroBatches: 4 / w, Replicas: w,
			})
			if err != nil {
				b.Fatal(err)
			}
			const batchSize = 8
			batch := c.MakeBatch(batchSize, data.DefaultBatchConfig(m.Config.SeqLen))
			params := m.Params()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				nn.ZeroGrads(params)
				if _, err := e.TrainStep(batch); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(batchSize)*float64(b.N)/b.Elapsed().Seconds(), "seqs/s")
		})
	}
}

// BenchmarkEngineRoundKFAC measures round-mode executor throughput: the
// same 1F1B PipeFisher configuration executed as K-step refresh rounds
// (K in {1, 2, 4}) — one K-FAC refresh spread over each window's bubbles,
// optimizer firing at the round-internal step barriers. The refresh
// interval is fixed at 4 steps for every K (skip-cadence for K = 1, every
// other round for K = 2, every round for K = 4), so the series isolates
// the cost/benefit of the round shape itself. Each K also runs with
// overlapped windows (the -overlap rows): refresh work that spills out of
// its window carries into the next round's bubbles as generation-lagged
// ops instead of serializing before the tail. At K in {2, 4} nothing
// spills, so the overlap rows execute the identical schedule and should
// match the serialized rows to within measurement noise (the acceptance
// bar is overlap >= serialized there). The committed baseline's K2 vs
// K2-overlap gap (1393 vs 1312 seqs/s) is exactly that noise, not a code
// path: TestOverlapIdentityConfigsCarryNothing proves this configuration
// carries nothing and emits op-identical schedules, and repeated local
// runs show serialized K2 alone spanning a wider band (1284-1403 seqs/s)
// than the two rows' committed difference. The auto-tuner's ranking
// captures the same fact from the other side — on equal predicted step
// time it tie-breaks toward the serialized round, so a measured-cost
// regime where overlap stops paying never trades refresh-state complexity
// for nothing. At K = 1 the whole refresh carries
// one round, which redistributes the work without changing its total —
// the wall-clock win appears when device goroutines have real dependency
// stalls to fill (multi-core runs), while the modeled-level win (makespan,
// refresh-filled bubble fraction) is asserted by the schedule and trace
// tests. CI distills the rows into BENCH_engine.json next to the per-step
// W series, and scripts/bench_compare gates regressions.
func BenchmarkEngineRoundKFAC(b *testing.B) {
	for _, k := range []int{1, 2, 4} {
		for _, overlap := range []bool{false, true} {
			name := fmt.Sprintf("K%d", k)
			if overlap {
				name += "-overlap"
			}
			b.Run(name, func(b *testing.B) {
				m, err := bert.New(bert.TinyConfig(), 5)
				if err != nil {
					b.Fatal(err)
				}
				c, err := data.NewCorpus(bert.TinyConfig().VocabSize, 1.0, 17)
				if err != nil {
					b.Fatal(err)
				}
				e, err := engine.NewWithConfig(m, engine.Config{
					Method: "1f1b", Stages: 2, MicroBatches: 4, RefreshSteps: k,
					OverlapRounds: overlap,
				})
				if err != nil {
					b.Fatal(err)
				}
				if err := e.EnableKFAC(kfac.DefaultOptions(), 4); err != nil {
					b.Fatal(err)
				}
				opt := optim.NewLAMB(m.Params(), 0.01)
				e.SetOptimizer(func(step int) error {
					opt.Step(1e-3)
					return nil
				})
				const batchSize = 8
				batches := make([]*data.Batch, k)
				for j := range batches {
					batches[j] = c.MakeBatch(batchSize, data.DefaultBatchConfig(m.Config.SeqLen))
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := e.TrainRound(batches); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(batchSize*k)*float64(b.N)/b.Elapsed().Seconds(), "seqs/s")
			})
		}
	}
}

// BenchmarkAllReduce measures the socket transport's chunked chain
// all-reduce against the same payload sent as one un-chunked message, over
// a 2-rank Unix-socket ring on localhost. With cores to run the ranks in
// parallel, the chunked row wins: chunk k's link transfer overlaps the fold
// of chunk k-1, so the pipelined form approaches bandwidth while the
// single-message form serializes hop after hop — the
// hardware.ChainAllReduceCost model, measured (and pinned at >= 1.3x by
// TestChainAllReduceChunkingPipelines). On a single-core runner the overlap
// cannot execute and chunking only pays its ~20us/frame fixed cost, so read
// the pair together with the host's core count. The 1 MiB payload is a
// BERT-Base-scale gradient bucket; bytes/s is reported as MB/s so the row
// lands next to the kernel bandwidth series.
func BenchmarkAllReduce(b *testing.B) {
	const n = 128 * 1024 // 1 MiB of float64s
	for _, bc := range []struct {
		name  string
		chunk int
	}{
		{"chunked", transport.DefaultChunkFloats},
		{"unchunked", n}, // one chunk spans the whole payload
	} {
		b.Run(bc.name, func(b *testing.B) {
			rings, err := transport.NewLocalRing(2, bc.chunk)
			if err != nil {
				b.Fatal(err)
			}
			defer func() {
				for _, r := range rings {
					r.Close()
				}
			}()
			var wg sync.WaitGroup
			errs := make([]error, len(rings))
			dsts := make([][]float64, len(rings))
			parts := make([][]float64, len(rings))
			for r := range rings {
				dsts[r] = make([]float64, n)
				parts[r] = make([]float64, n)
				for i := range parts[r] {
					parts[r][i] = float64(r*n + i)
				}
			}
			b.SetBytes(8 * n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				wg.Add(len(rings))
				for r := range rings {
					go func(r int) {
						defer wg.Done()
						// One fixed name: same-name collectives are legal when
						// issued in the same order, and the steady state of the
						// engine reuses its names every step just like this.
						_, errs[r] = rings[r].AllReduce("bench/sum", dsts[r], nil, [][]float64{parts[r]})
					}(r)
				}
				wg.Wait()
				for r, err := range errs {
					if err != nil {
						b.Fatalf("rank %d: %v", r, err)
					}
				}
			}
			b.ReportMetric(float64(8*n)*float64(b.N)/b.Elapsed().Seconds()/1e6, "MB/s")
		})
	}
}

// BenchmarkEngineTransport runs the identical global batch through the
// executor's three transport configurations: the in-process loopback at
// W in {1, 2} (the BenchmarkEngineStep shapes, unchanged semantics) and a
// 2-process-shaped ring group — two engine instances in one process wired
// over a Unix-socket ring, one replica each, the same global W = 2. The
// loopback rows are the zero-overhead reference the transport seam must not
// tax; the ring row prices the wire (frame encode, socket hop, chunk
// pipelining) for the same bit-identical result. CI distills all three into
// BENCH_engine.json next to the per-step W series.
func BenchmarkEngineTransport(b *testing.B) {
	// globalW is replicas x group size; every configuration splits the same
	// 8-sequence global batch into 4/globalW micro-batches per replica.
	mkEngine := func(b *testing.B, globalW, replicas int, g transport.Group) (*engine.Engine, *data.Batch, []*nn.Param) {
		m, err := bert.New(bert.TinyConfig(), 5)
		if err != nil {
			b.Fatal(err)
		}
		c, err := data.NewCorpus(bert.TinyConfig().VocabSize, 1.0, 17)
		if err != nil {
			b.Fatal(err)
		}
		e, err := engine.NewWithConfig(m, engine.Config{
			Method: "1f1b", Stages: 2, MicroBatches: 4 / globalW, Replicas: replicas,
			Transport: g,
		})
		if err != nil {
			b.Fatal(err)
		}
		batch := c.MakeBatch(8, data.DefaultBatchConfig(m.Config.SeqLen))
		return e, batch, m.Params()
	}
	for _, w := range []int{1, 2} {
		b.Run(fmt.Sprintf("loopback/W%d", w), func(b *testing.B) {
			e, batch, params := mkEngine(b, w, w, nil)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				nn.ZeroGrads(params)
				if _, err := e.TrainStep(batch); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(8*float64(b.N)/b.Elapsed().Seconds(), "seqs/s")
		})
	}
	b.Run("ring/2x1", func(b *testing.B) {
		rings, err := transport.NewLocalRing(2, transport.DefaultChunkFloats)
		if err != nil {
			b.Fatal(err)
		}
		defer func() {
			for _, r := range rings {
				r.Close()
			}
		}()
		engines := make([]*engine.Engine, 2)
		batches := make([]*data.Batch, 2)
		paramSets := make([][]*nn.Param, 2)
		var wg sync.WaitGroup
		for r := range engines {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				engines[r], batches[r], paramSets[r] = mkEngine(b, 2, 1, rings[r])
			}(r)
		}
		wg.Wait()
		errs := make([]error, 2)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			wg.Add(2)
			for r := range engines {
				go func(r int) {
					defer wg.Done()
					nn.ZeroGrads(paramSets[r])
					_, errs[r] = engines[r].TrainStep(batches[r])
				}(r)
			}
			wg.Wait()
			for r, err := range errs {
				if err != nil {
					b.Fatalf("rank %d: %v", r, err)
				}
			}
		}
		b.ReportMetric(8*float64(b.N)/b.Elapsed().Seconds(), "seqs/s")
	})
}

// BenchmarkEngineStepKFAC is the same comparison with the PipeFisher
// schedule: K-FAC curvature/inversion in the bubbles (inversion sharded
// round-robin across the replica group at W = 2) plus per-step
// preconditioning.
func BenchmarkEngineStepKFAC(b *testing.B) {
	for _, w := range []int{1, 2} {
		b.Run(fmt.Sprintf("W%d", w), func(b *testing.B) {
			m, err := bert.New(bert.TinyConfig(), 5)
			if err != nil {
				b.Fatal(err)
			}
			c, err := data.NewCorpus(bert.TinyConfig().VocabSize, 1.0, 17)
			if err != nil {
				b.Fatal(err)
			}
			e, err := engine.NewWithConfig(m, engine.Config{
				Method: "1f1b", Stages: 2, MicroBatches: 4 / w,
				Replicas: w, InversionParallel: w > 1,
			})
			if err != nil {
				b.Fatal(err)
			}
			if err := e.EnableKFAC(kfac.DefaultOptions(), 2); err != nil {
				b.Fatal(err)
			}
			const batchSize = 8
			batch := c.MakeBatch(batchSize, data.DefaultBatchConfig(m.Config.SeqLen))
			params := m.Params()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				nn.ZeroGrads(params)
				if _, err := e.TrainStep(batch); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(batchSize)*float64(b.N)/b.Elapsed().Seconds(), "seqs/s")
		})
	}
}

// BenchmarkEngineAutotune measures the closed-loop tuner riding the real
// executor. The steady row runs the committed-best round configuration
// (1f1b, K = 2) with the tuner observing every round and ranking the
// candidate space on its decision cadence — the cost of the closed loop
// when there is nothing to fix. The retune row starts from the
// deliberately bad configuration (gpipe, K = 1, serialized), lets the
// tuner refit costs from executed timelines and hot-swap at a round
// boundary, and reports the throughput of the whole trajectory including
// the swap — the closed-loop acceptance number next to the hand-picked
// EngineRoundKFAC rows. CI distills both into BENCH_engine.json, gated
// like every engine row.
func BenchmarkEngineAutotune(b *testing.B) {
	run := func(b *testing.B, cfg engine.Config, tcfg autotune.Config) {
		m, err := bert.New(bert.TinyConfig(), 5)
		if err != nil {
			b.Fatal(err)
		}
		c, err := data.NewCorpus(bert.TinyConfig().VocabSize, 1.0, 17)
		if err != nil {
			b.Fatal(err)
		}
		e, err := engine.NewWithConfig(m, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if err := e.EnableKFAC(kfac.DefaultOptions(), cfg.RefreshSteps); err != nil {
			b.Fatal(err)
		}
		opt := optim.NewLAMB(m.Params(), 0.01)
		e.SetOptimizer(func(step int) error {
			opt.Step(1e-3)
			return nil
		})
		tn, err := autotune.New(e, tcfg)
		if err != nil {
			b.Fatal(err)
		}
		const batchSize = 8
		mkBatches := func(k int) []*data.Batch {
			out := make([]*data.Batch, k)
			for j := range out {
				out[j] = c.MakeBatch(batchSize, data.DefaultBatchConfig(m.Config.SeqLen))
			}
			return out
		}
		steps := 0
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			k := e.RoundSteps() // swaps change the round length
			if _, err := e.TrainRound(mkBatches(k)); err != nil {
				b.Fatal(err)
			}
			if _, err := tn.Observe(); err != nil {
				b.Fatal(err)
			}
			steps += k
		}
		b.ReportMetric(float64(batchSize)*float64(steps)/b.Elapsed().Seconds(), "seqs/s")
	}
	b.Run("steady", func(b *testing.B) {
		run(b, engine.Config{Method: "1f1b", Stages: 2, MicroBatches: 4, RefreshSteps: 2},
			autotune.Config{WarmupRounds: 2, Interval: 8, Methods: []string{"gpipe", "1f1b"}, MaxRefreshSteps: 2})
	})
	b.Run("retune", func(b *testing.B) {
		run(b, engine.Config{Method: "gpipe", Stages: 2, MicroBatches: 4, RefreshSteps: 1},
			autotune.Config{WarmupRounds: 1, Interval: 4, Methods: []string{"gpipe", "1f1b"}, MaxRefreshSteps: 2})
	})
}
